//! The serverless execution model: cold/warm starts, lifecycle phases, and a
//! keep-alive instance pool (§2.1, Figure 1 of the paper).
//!
//! An invocation's lifecycle is:
//!
//! ```text
//! |-- instance init --|-- image transmission --|-- function init --|-- exec --|
//!         not billed            not billed            billed          billed
//! ```
//!
//! Warm starts skip everything but exec. Checkpoint/restore modes replace
//! the function-init phase with a snapshot restore.

use crate::pricing::PricingModel;
use crate::snapshot::CheckpointModel;

/// Measured profile of a serverless application — the four quantities every
/// experiment consumes. Produced by running the app's pylite code under the
/// metered interpreter, or taken from the paper's Table 1 for calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name.
    pub name: String,
    /// Deployment image size in MB (code + dependencies).
    pub image_mb: f64,
    /// Function Initialization (import) time in seconds.
    pub init_secs: f64,
    /// Function Execution (handler) time in seconds.
    pub exec_secs: f64,
    /// Peak runtime memory footprint in MB.
    pub mem_mb: f64,
}

impl AppProfile {
    /// Construct a profile.
    pub fn new(
        name: impl Into<String>,
        image_mb: f64,
        init_secs: f64,
        exec_secs: f64,
        mem_mb: f64,
    ) -> Self {
        AppProfile {
            name: name.into(),
            image_mb,
            init_secs,
            exec_secs,
            mem_mb,
        }
    }

    /// Billable duration of a cold start in milliseconds (init + exec).
    pub fn cold_billable_ms(&self) -> f64 {
        (self.init_secs + self.exec_secs) * 1000.0
    }

    /// Billable duration of a warm start in milliseconds (exec only).
    pub fn warm_billable_ms(&self) -> f64 {
        self.exec_secs * 1000.0
    }
}

/// Whether an invocation found a warm instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StartKind {
    /// A new instance had to be initialized on the critical path.
    Cold,
    /// A previously initialized instance was reused.
    Warm,
}

/// How cold starts initialize function state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StartMode {
    /// Run the Function Initialization code (the default).
    Standard,
    /// Restore interpreter state from a checkpoint (CRIU / SnapStart style).
    Restore,
}

/// Latency breakdown of one invocation, in seconds per phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// VM/runtime setup (not billed).
    pub instance_init_secs: f64,
    /// Container image download (not billed).
    pub image_tx_secs: f64,
    /// Function Initialization — imports, environment setup (billed).
    pub function_init_secs: f64,
    /// Function Execution — the handler (billed).
    pub exec_secs: f64,
}

impl PhaseBreakdown {
    /// End-to-end latency: the sum of all phases.
    pub fn e2e_secs(&self) -> f64 {
        self.instance_init_secs + self.image_tx_secs + self.function_init_secs + self.exec_secs
    }

    /// Billed duration in milliseconds (function init + exec).
    pub fn billable_ms(&self) -> f64 {
        (self.function_init_secs + self.exec_secs) * 1000.0
    }
}

/// The outcome of one simulated invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Cold or warm.
    pub start: StartKind,
    /// Phase latencies.
    pub phases: PhaseBreakdown,
    /// Billed duration after rounding, in milliseconds.
    pub billed_ms: f64,
    /// Cost in dollars (Equation 1).
    pub cost: f64,
}

impl Invocation {
    /// End-to-end latency in seconds.
    pub fn e2e_secs(&self) -> f64 {
        self.phases.e2e_secs()
    }
}

/// Platform-level constants for the phases the provider controls.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Fixed VM/runtime setup time in seconds (not billed).
    pub instance_init_secs: f64,
    /// Image download bandwidth in MB/s (not billed).
    pub image_bandwidth_mb_s: f64,
    /// Pricing model.
    pub pricing: PricingModel,
    /// Checkpoint/restore model (used in [`StartMode::Restore`]).
    pub checkpoint: CheckpointModel,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            instance_init_secs: 0.9,
            image_bandwidth_mb_s: 170.0,
            pricing: PricingModel::aws(),
            checkpoint: CheckpointModel::default(),
        }
    }
}

/// A serverless platform simulator bound to a configuration.
#[derive(Debug, Clone, Default)]
pub struct Platform {
    /// Platform constants.
    pub config: PlatformConfig,
}

impl Platform {
    /// Create a platform with the given configuration.
    pub fn new(config: PlatformConfig) -> Self {
        Platform { config }
    }

    /// Simulate one cold start of `app`.
    pub fn cold_invocation(&self, app: &AppProfile, mode: StartMode) -> Invocation {
        let function_init_secs = match mode {
            StartMode::Standard => app.init_secs,
            StartMode::Restore => {
                let size = self.config.checkpoint.snapshot_mb(app.mem_mb);
                self.config.checkpoint.restore_secs(size)
            }
        };
        let phases = PhaseBreakdown {
            instance_init_secs: self.config.instance_init_secs,
            image_tx_secs: app.image_mb / self.config.image_bandwidth_mb_s,
            function_init_secs,
            exec_secs: app.exec_secs,
        };
        self.finish(app, StartKind::Cold, phases)
    }

    /// Simulate one warm start of `app` (exec only).
    pub fn warm_invocation(&self, app: &AppProfile) -> Invocation {
        let phases = PhaseBreakdown {
            exec_secs: app.exec_secs,
            ..PhaseBreakdown::default()
        };
        self.finish(app, StartKind::Warm, phases)
    }

    fn finish(&self, app: &AppProfile, start: StartKind, phases: PhaseBreakdown) -> Invocation {
        let billed_ms = self.config.pricing.billed_duration_ms(phases.billable_ms());
        let cost = self
            .config
            .pricing
            .invocation_cost(app.mem_mb, phases.billable_ms());
        Invocation {
            start,
            phases,
            billed_ms,
            cost,
        }
    }
}

/// Result of simulating a stream of arrivals through the keep-alive pool.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PoolStats {
    /// Number of cold starts.
    pub cold_starts: u64,
    /// Number of warm starts.
    pub warm_starts: u64,
    /// Sum of invocation costs in dollars.
    pub total_cost: f64,
    /// Sum of end-to-end latencies in seconds.
    pub total_e2e_secs: f64,
    /// Peak number of concurrently live instances.
    pub peak_instances: usize,
}

impl PoolStats {
    /// Total invocations.
    pub fn invocations(&self) -> u64 {
        self.cold_starts + self.warm_starts
    }

    /// Fraction of invocations that were cold.
    pub fn cold_fraction(&self) -> f64 {
        let n = self.invocations();
        if n == 0 {
            0.0
        } else {
            self.cold_starts as f64 / n as f64
        }
    }
}

/// Simulate a full arrival process through a keep-alive instance pool.
///
/// `arrivals` must be sorted ascending (seconds from window start). Each
/// arrival reuses an idle, unexpired instance when one exists (warm start),
/// otherwise boots a new one (cold start). An instance expires `keep_alive`
/// seconds after it last finished a request.
pub fn simulate_pool(
    platform: &Platform,
    app: &AppProfile,
    arrivals: &[f64],
    keep_alive_secs: f64,
    mode: StartMode,
) -> PoolStats {
    #[derive(Clone, Copy)]
    struct Instance {
        free_at: f64,
        expires_at: f64,
    }
    let mut instances: Vec<Instance> = Vec::new();
    let mut stats = PoolStats::default();
    for &t in arrivals {
        // Reap expired instances (expired before this arrival and idle).
        instances.retain(|i| !(i.free_at <= t && i.expires_at < t));
        // Find an idle warm instance: free and not expired.
        let idle = instances
            .iter_mut()
            .filter(|i| i.free_at <= t && i.expires_at >= t)
            .max_by(|a, b| a.free_at.total_cmp(&b.free_at));
        let inv = match idle {
            Some(slot) => {
                let inv = platform.warm_invocation(app);
                let finish = t + inv.e2e_secs();
                slot.free_at = finish;
                slot.expires_at = finish + keep_alive_secs;
                stats.warm_starts += 1;
                inv
            }
            None => {
                let inv = platform.cold_invocation(app, mode);
                let finish = t + inv.e2e_secs();
                instances.push(Instance {
                    free_at: finish,
                    expires_at: finish + keep_alive_secs,
                });
                stats.cold_starts += 1;
                inv
            }
        };
        stats.total_cost += inv.cost;
        stats.total_e2e_secs += inv.e2e_secs();
        stats.peak_instances = stats.peak_instances.max(instances.len());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet() -> AppProfile {
        // Table 1: resnet — 742.56 MB image, 6.30 s import, 5.30 s exec.
        AppProfile::new("resnet", 742.56, 6.30, 5.30, 820.0)
    }

    #[test]
    fn cold_start_includes_all_phases() {
        let p = Platform::default();
        let inv = p.cold_invocation(&resnet(), StartMode::Standard);
        assert_eq!(inv.start, StartKind::Cold);
        assert!(inv.phases.instance_init_secs > 0.0);
        assert!(inv.phases.image_tx_secs > 1.0);
        assert!((inv.phases.function_init_secs - 6.30).abs() < 1e-9);
        assert!(inv.e2e_secs() > 11.0);
    }

    #[test]
    fn warm_start_is_exec_only() {
        let p = Platform::default();
        let inv = p.warm_invocation(&resnet());
        assert_eq!(inv.start, StartKind::Warm);
        assert!((inv.e2e_secs() - 5.30).abs() < 1e-9);
        assert!((inv.billed_ms - 5300.0).abs() < 1.0);
    }

    #[test]
    fn only_init_and_exec_are_billed() {
        let p = Platform::default();
        let inv = p.cold_invocation(&resnet(), StartMode::Standard);
        let billed_secs = inv.billed_ms / 1000.0;
        assert!(
            (billed_secs - (6.30 + 5.30)).abs() < 0.01,
            "platform-side phases are free"
        );
        assert!(inv.e2e_secs() > billed_secs);
    }

    #[test]
    fn restore_mode_replaces_init_for_large_apps() {
        let p = Platform::default();
        let std = p.cold_invocation(&resnet(), StartMode::Standard);
        let cr = p.cold_invocation(&resnet(), StartMode::Restore);
        assert!(
            cr.phases.function_init_secs < std.phases.function_init_secs,
            "restore beats a 6.3 s import"
        );
    }

    #[test]
    fn restore_mode_hurts_tiny_apps() {
        // §8.6: CRIU's ~0.1 s process-recreation overhead makes C/R slower
        // than just running a sub-0.05 s import.
        let p = Platform::default();
        let tiny = AppProfile::new("markdown", 32.0, 0.04, 0.03, 40.0);
        let std = p.cold_invocation(&tiny, StartMode::Standard);
        let cr = p.cold_invocation(&tiny, StartMode::Restore);
        assert!(cr.phases.function_init_secs > std.phases.function_init_secs);
    }

    #[test]
    fn pool_reuses_warm_instances() {
        let p = Platform::default();
        let app = AppProfile::new("a", 50.0, 0.5, 0.1, 200.0);
        // Arrivals far enough apart to finish, close enough to stay warm.
        let arrivals = vec![0.0, 10.0, 20.0, 30.0];
        let stats = simulate_pool(&p, &app, &arrivals, 900.0, StartMode::Standard);
        assert_eq!(stats.cold_starts, 1);
        assert_eq!(stats.warm_starts, 3);
    }

    #[test]
    fn pool_expires_idle_instances() {
        let p = Platform::default();
        let app = AppProfile::new("a", 50.0, 0.5, 0.1, 200.0);
        let arrivals = vec![0.0, 10_000.0];
        let stats = simulate_pool(&p, &app, &arrivals, 60.0, StartMode::Standard);
        assert_eq!(stats.cold_starts, 2, "keep-alive elapsed between arrivals");
    }

    #[test]
    fn pool_bursts_force_concurrent_cold_starts() {
        let p = Platform::default();
        let app = AppProfile::new("a", 50.0, 0.5, 2.0, 200.0);
        // Three simultaneous arrivals — no instance is free.
        let arrivals = vec![0.0, 0.0, 0.0];
        let stats = simulate_pool(&p, &app, &arrivals, 900.0, StartMode::Standard);
        assert_eq!(stats.cold_starts, 3);
        assert_eq!(stats.peak_instances, 3);
    }

    #[test]
    fn pool_stats_cold_fraction() {
        let s = PoolStats {
            cold_starts: 1,
            warm_starts: 3,
            ..PoolStats::default()
        };
        assert!((s.cold_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(PoolStats::default().cold_fraction(), 0.0);
    }

    #[test]
    fn trimmed_profile_costs_less() {
        let p = Platform::default();
        let original = resnet();
        let trimmed = AppProfile::new("resnet-trim", 700.0, 3.1, 5.30, 650.0);
        let c_orig = p.cold_invocation(&original, StartMode::Standard).cost;
        let c_trim = p.cold_invocation(&trimmed, StartMode::Standard).cost;
        assert!(c_trim < c_orig);
    }
}
