//! Azure-Functions-style invocation trace generation (§8.6, Figures 13–14).
//!
//! The paper simulates SnapStart costs over Microsoft's Azure Functions
//! trace (Shahrad et al., ATC'20). The trace itself is proprietary, so this
//! module synthesizes arrival processes with the published *shape*:
//!
//! * invocation rates are extremely heavy-tailed — most functions fire a few
//!   times a day, a small minority fire many times a minute;
//! * many functions are timer-driven (near-periodic), the rest bursty or
//!   Poisson-like;
//! * per-function memory and duration distributions are broad and skewed.
//!
//! Generation is fully seeded and deterministic.

use trim_rng::Rng;

/// The arrival-pattern class of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalClass {
    /// Timer/cron style: regular period with small jitter.
    Periodic,
    /// Poisson arrivals at a constant rate.
    Poisson,
    /// On/off bursts: quiet gaps, then a burst of closely spaced requests.
    Bursty,
    /// A handful of invocations over the whole window.
    Rare,
}

/// One synthetic function in the trace: its resource profile and arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionTrace {
    /// Trace-unique identifier.
    pub id: u32,
    /// Arrival class used to generate it.
    pub class: ArrivalClass,
    /// Average memory footprint in MB.
    pub mem_mb: f64,
    /// Average execution duration in milliseconds.
    pub duration_ms: f64,
    /// Sorted arrival timestamps in seconds from window start.
    pub arrivals: Vec<f64>,
}

impl FunctionTrace {
    /// Number of invocations in the window.
    pub fn invocations(&self) -> usize {
        self.arrivals.len()
    }
}

/// Configuration for the trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of functions to synthesize.
    pub functions: usize,
    /// Window length in seconds (the paper simulates 24 h).
    pub window_secs: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            functions: 400,
            window_secs: 24.0 * 3600.0,
            seed: 0xA57AC3,
        }
    }
}

/// Generate a synthetic Azure-style trace.
pub fn generate_trace(config: &TraceConfig) -> Vec<FunctionTrace> {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.functions);
    for id in 0..config.functions {
        let class_roll: f64 = rng.f64();
        // Rough class mix per Shahrad et al.: ~29% timers, plus a long tail
        // of rare functions and a small hot set.
        let class = if class_roll < 0.30 {
            ArrivalClass::Periodic
        } else if class_roll < 0.55 {
            ArrivalClass::Rare
        } else if class_roll < 0.85 {
            ArrivalClass::Poisson
        } else {
            ArrivalClass::Bursty
        };
        // Heavy-tailed resource profile: log-uniform memory and duration.
        let mem_mb = log_uniform(&mut rng, 64.0, 2048.0);
        let duration_ms = log_uniform(&mut rng, 5.0, 20_000.0);
        let arrivals = match class {
            ArrivalClass::Periodic => periodic_arrivals(&mut rng, config.window_secs),
            ArrivalClass::Poisson => poisson_arrivals(&mut rng, config.window_secs),
            ArrivalClass::Bursty => bursty_arrivals(&mut rng, config.window_secs),
            ArrivalClass::Rare => rare_arrivals(&mut rng, config.window_secs),
        };
        out.push(FunctionTrace {
            id: id as u32,
            class,
            mem_mb,
            duration_ms,
            arrivals,
        });
    }
    out
}

fn log_uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    let u: f64 = rng.f64();
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

fn periodic_arrivals(rng: &mut Rng, window: f64) -> Vec<f64> {
    // Periods from 1 minute to 4 hours, log-uniform.
    let period = log_uniform(rng, 60.0, 4.0 * 3600.0);
    let phase: f64 = rng.f64() * period;
    let mut out = Vec::new();
    let mut t = phase;
    while t < window {
        // Small jitter (±2% of period).
        let jitter = (rng.f64() - 0.5) * 0.04 * period;
        let ts = (t + jitter).clamp(0.0, window);
        out.push(ts);
        t += period;
    }
    out.sort_by(f64::total_cmp);
    out
}

fn poisson_arrivals(rng: &mut Rng, window: f64) -> Vec<f64> {
    // Rates log-uniform from one per 2 h to one per 5 s.
    let rate = log_uniform(rng, 1.0 / 7200.0, 0.2);
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        let u: f64 = rng.f64().max(1e-12);
        t += -u.ln() / rate;
        if t >= window || out.len() > 2_000_000 {
            break;
        }
        out.push(t);
    }
    out
}

fn bursty_arrivals(rng: &mut Rng, window: f64) -> Vec<f64> {
    let mut out = Vec::new();
    let mut t = 0.0;
    while t < window {
        // Quiet gap: 10 min – 6 h.
        t += log_uniform(rng, 600.0, 6.0 * 3600.0);
        if t >= window {
            break;
        }
        // Burst of 3–60 requests spaced 0.05–2 s apart.
        let burst_len = rng.usize_inclusive(3, 60);
        let mut bt = t;
        for _ in 0..burst_len {
            bt += log_uniform(rng, 0.05, 2.0);
            if bt >= window {
                break;
            }
            out.push(bt);
        }
        t = bt;
    }
    out
}

fn rare_arrivals(rng: &mut Rng, window: f64) -> Vec<f64> {
    let n = rng.usize_inclusive(1, 8);
    let mut out: Vec<f64> = (0..n).map(|_| rng.f64() * window).collect();
    out.sort_by(f64::total_cmp);
    out
}

/// Find the trace function most similar to `(mem_mb, duration_ms)` under the
/// L2 norm — the paper's §8.6 method for mapping each benchmarked app onto
/// an Azure-trace invocation pattern. Dimensions are normalized by the trace
/// maxima so neither dominates.
pub fn nearest_function(
    trace: &[FunctionTrace],
    mem_mb: f64,
    duration_ms: f64,
) -> Option<&FunctionTrace> {
    let max_mem = trace.iter().map(|f| f.mem_mb).fold(1.0, f64::max);
    let max_dur = trace.iter().map(|f| f.duration_ms).fold(1.0, f64::max);
    trace.iter().min_by(|a, b| {
        let d = |f: &FunctionTrace| {
            let dm = (f.mem_mb - mem_mb) / max_mem;
            let dd = (f.duration_ms - duration_ms) / max_dur;
            dm * dm + dd * dd
        };
        d(a).total_cmp(&d(b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> TraceConfig {
        TraceConfig {
            functions: 60,
            window_secs: 24.0 * 3600.0,
            seed,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_trace(&small_config(7));
        let b = generate_trace(&small_config(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_trace(&small_config(1));
        let b = generate_trace(&small_config(2));
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_and_in_window() {
        let trace = generate_trace(&small_config(3));
        for f in &trace {
            for w in f.arrivals.windows(2) {
                assert!(w[0] <= w[1], "arrivals must be sorted");
            }
            for &t in &f.arrivals {
                assert!((0.0..=24.0 * 3600.0).contains(&t));
            }
        }
    }

    #[test]
    fn rate_distribution_is_heavy_tailed() {
        let trace = generate_trace(&TraceConfig {
            functions: 400,
            ..small_config(11)
        });
        let mut counts: Vec<usize> = trace.iter().map(|f| f.invocations()).collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        let max = *counts.last().unwrap();
        assert!(
            max > median.max(1) * 20,
            "hot functions should dwarf the median (median={median}, max={max})"
        );
    }

    #[test]
    fn all_classes_appear() {
        let trace = generate_trace(&TraceConfig {
            functions: 300,
            ..small_config(5)
        });
        for class in [
            ArrivalClass::Periodic,
            ArrivalClass::Poisson,
            ArrivalClass::Bursty,
            ArrivalClass::Rare,
        ] {
            assert!(
                trace.iter().any(|f| f.class == class),
                "missing class {class:?}"
            );
        }
    }

    #[test]
    fn nearest_function_picks_closest_profile() {
        let trace = vec![
            FunctionTrace {
                id: 0,
                class: ArrivalClass::Rare,
                mem_mb: 100.0,
                duration_ms: 100.0,
                arrivals: vec![],
            },
            FunctionTrace {
                id: 1,
                class: ArrivalClass::Rare,
                mem_mb: 1000.0,
                duration_ms: 10_000.0,
                arrivals: vec![],
            },
        ];
        assert_eq!(nearest_function(&trace, 120.0, 150.0).unwrap().id, 0);
        assert_eq!(nearest_function(&trace, 900.0, 9_000.0).unwrap().id, 1);
        assert!(nearest_function(&[], 1.0, 1.0).is_none());
    }
}
