//! Synthetic Azure-Functions-style trace generation (§8.6, Figures 13–14).
//!
//! The trace Microsoft published is per-minute counts; the raw arrival
//! process is proprietary. This generator synthesizes arrival processes
//! with the published *shape*:
//!
//! * invocation rates are extremely heavy-tailed — most functions fire a few
//!   times a day, a small minority fire many times a minute;
//! * many functions are timer-driven (near-periodic), the rest bursty or
//!   Poisson-like;
//! * per-function memory and duration distributions are broad and skewed;
//! * demand-driven traffic follows a diurnal + day-of-week cycle
//!   (see [`DiurnalProfile`]); timers do not.
//!
//! Generation is fully seeded and deterministic, and every arrival lies in
//! `[0, window_secs)`.
//!
//! # Streaming
//!
//! Every function draws from its own RNG stream, seeded from
//! `config.seed ^ fnv1a64(name)` — so [`synthesize_function`] can produce
//! function `i` without generating functions `0..i`, any subset of the
//! fleet can be generated on any worker in any order, and arrivals come out
//! of [`SyntheticFunction::arrivals`] as a sorted iterator that never
//! materializes a `Vec<f64>`. A 40k-function fleet with 10⁸ invocations
//! streams through the replay engine in bounded memory (see
//! [`super::replay_fleet`]). [`generate_trace`] is a thin wrapper that
//! collects every stream into [`FunctionTrace`]s, so the materialized and
//! streaming paths are byte-identical by construction (and pinned by
//! tests).

use super::reconstruct::fnv1a64;
use super::{
    validate_window, ArrivalClass, DiurnalProfile, FunctionTrace, TraceError, TraceSet, TraceSource,
};
use trim_rng::Rng;

/// Domain-separation constant for the per-function profile/arrival stream,
/// keeping it independent of the diurnal-thinning stream that shares the
/// `seed ^ fnv1a64(name)` derivation.
const PROFILE_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration for the trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of functions to synthesize.
    pub functions: usize,
    /// Window length in seconds (the paper simulates 24 h).
    pub window_secs: f64,
    /// RNG seed.
    pub seed: u64,
    /// Diurnal/day-of-week modulation of demand-driven classes
    /// (`None` = flat rates, the pre-modulation behavior).
    pub diurnal: Option<DiurnalProfile>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            functions: 400,
            window_secs: 24.0 * 3600.0,
            seed: 0xA57AC3,
            diurnal: None,
        }
    }
}

impl TraceConfig {
    /// Validate the configuration: the window must be finite and strictly
    /// positive, and any diurnal profile must be in range.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidWindow`] or [`TraceError::InvalidDiurnal`].
    pub fn validate(&self) -> Result<(), TraceError> {
        validate_window(self.window_secs)?;
        if let Some(diurnal) = &self.diurnal {
            diurnal.validate()?;
        }
        Ok(())
    }
}

/// One synthesized function's profile, with its arrival process still
/// *latent*: [`SyntheticFunction::arrivals`] streams the (sorted, seeded)
/// arrival sequence on demand, any number of times, without materializing
/// it. Produced by [`synthesize_function`].
#[derive(Debug, Clone)]
pub struct SyntheticFunction {
    /// Function id (index into the fleet).
    pub id: u32,
    /// Function name (`fn{id}`), the per-function stream-seed input.
    pub name: String,
    /// Arrival-process class.
    pub class: ArrivalClass,
    /// Allocated memory in MB (log-uniform 64–2048).
    pub mem_mb: f64,
    /// Mean execution duration in ms (log-uniform 5–20000).
    pub duration_ms: f64,
    window_secs: f64,
    diurnal: Option<DiurnalProfile>,
    /// Profile stream positioned after the class/memory/duration draws;
    /// each `arrivals()` call resumes from here.
    arrival_rng: Rng,
    thin_seed: u64,
}

impl SyntheticFunction {
    /// Stream this function's arrival sequence: sorted ascending, every
    /// arrival in `[0, window_secs)`, deterministic for a fixed config.
    /// Demand-driven classes are thinned by the diurnal profile (timers
    /// are exempt), exactly as the materialized path does.
    pub fn arrivals(&self) -> ArrivalStream {
        let mut rng = self.arrival_rng.clone();
        let window = self.window_secs;
        let inner = match self.class {
            ArrivalClass::Periodic => {
                // Periods from 1 minute to 4 hours, log-uniform.
                let period = log_uniform(&mut rng, 60.0, 4.0 * 3600.0);
                let phase = rng.f64() * period;
                StreamKind::Periodic {
                    rng,
                    period,
                    t: phase,
                }
            }
            ArrivalClass::Poisson => {
                // Rates log-uniform from one per 2 h to one per 5 s.
                let rate = log_uniform(&mut rng, 1.0 / 7200.0, 0.2);
                StreamKind::Poisson {
                    rng,
                    rate,
                    t: 0.0,
                    yielded: 0,
                    done: false,
                }
            }
            ArrivalClass::Bursty => StreamKind::Bursty {
                rng,
                bt: 0.0,
                remaining: 0,
                done: false,
            },
            ArrivalClass::Rare => {
                let n = rng.usize_inclusive(1, 8);
                let mut out: Vec<f64> = (0..n).map(|_| rng.f64() * window).collect();
                out.sort_by(f64::total_cmp);
                StreamKind::Rare {
                    buf: out.into_iter(),
                }
            }
        };
        // Timers fire on schedule whatever the hour; human-driven traffic
        // is thinned by the time-of-day acceptance probability. Thinning
        // draws from a dedicated per-function stream so the underlying
        // arrival skeleton (and every other function) is identical with
        // and without modulation.
        let thin = match (&self.diurnal, self.class == ArrivalClass::Periodic) {
            (Some(diurnal), false) => Some((Rng::seed_from_u64(self.thin_seed), *diurnal)),
            _ => None,
        };
        ArrivalStream {
            window,
            inner,
            thin,
        }
    }

    /// Collect the stream into a [`FunctionTrace`] (the materialized
    /// representation [`generate_trace`] returns).
    pub fn materialize(&self) -> FunctionTrace {
        FunctionTrace {
            id: self.id,
            name: self.name.clone(),
            class: self.class,
            mem_mb: self.mem_mb,
            // The dataset's percentile columns, approximated with fixed
            // skew factors for synthetic functions.
            p99_mem_mb: self.mem_mb * 1.3,
            duration_ms: self.duration_ms,
            p50_duration_ms: self.duration_ms * 0.75,
            p99_duration_ms: self.duration_ms * 2.5,
            arrivals: self.arrivals().collect(),
        }
    }
}

/// Synthesize function `id` of the fleet described by `config`, without
/// touching any other function: the profile draws from an RNG seeded on
/// `config.seed ^ fnv1a64("fn{id}") ^ PROFILE_STREAM`, so generation is
/// row-order independent and shardable across workers.
///
/// The configuration is assumed valid ([`TraceConfig::validate`]); entry
/// points validate once per fleet, not once per function.
pub fn synthesize_function(config: &TraceConfig, id: usize) -> SyntheticFunction {
    let name = format!("fn{id}");
    let stream_seed = config.seed ^ fnv1a64(name.as_bytes());
    let mut rng = Rng::seed_from_u64(stream_seed ^ PROFILE_STREAM);
    let class_roll: f64 = rng.f64();
    // Rough class mix per Shahrad et al.: ~29% timers, plus a long tail
    // of rare functions and a small hot set.
    let class = if class_roll < 0.30 {
        ArrivalClass::Periodic
    } else if class_roll < 0.55 {
        ArrivalClass::Rare
    } else if class_roll < 0.85 {
        ArrivalClass::Poisson
    } else {
        ArrivalClass::Bursty
    };
    // Heavy-tailed resource profile: log-uniform memory and duration.
    let mem_mb = log_uniform(&mut rng, 64.0, 2048.0);
    let duration_ms = log_uniform(&mut rng, 5.0, 20_000.0);
    SyntheticFunction {
        id: id as u32,
        name,
        class,
        mem_mb,
        duration_ms,
        window_secs: config.window_secs,
        diurnal: config.diurnal,
        arrival_rng: rng,
        thin_seed: stream_seed,
    }
}

/// Generate a synthetic Azure-style trace by materializing every
/// function's arrival stream (see [`synthesize_function`] for the
/// streaming path the fleet replayer uses instead).
///
/// # Panics
///
/// Panics on an invalid configuration (degenerate window or out-of-range
/// diurnal profile) — call [`TraceConfig::validate`] first to surface the
/// error gracefully.
pub fn generate_trace(config: &TraceConfig) -> TraceSet {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid TraceConfig: {e}"));
    let functions = (0..config.functions)
        .map(|id| synthesize_function(config, id).materialize())
        .collect();
    TraceSet {
        window_secs: config.window_secs,
        functions,
        source: TraceSource::Synthetic { seed: config.seed },
    }
}

/// Streaming arrival iterator for one synthetic function: sorted
/// ascending, every item in `[0, window)`. Obtained from
/// [`SyntheticFunction::arrivals`].
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    window: f64,
    inner: StreamKind,
    thin: Option<(Rng, DiurnalProfile)>,
}

#[derive(Debug, Clone)]
enum StreamKind {
    /// Near-periodic timer ticks with ±2% jitter. The jitter bound keeps
    /// consecutive ticks ≥ 0.96 periods apart, so emission order is
    /// already sorted.
    Periodic { rng: Rng, period: f64, t: f64 },
    /// Homogeneous Poisson process via exponential gaps, capped at
    /// ~2M arrivals as a runaway guard.
    Poisson {
        rng: Rng,
        rate: f64,
        t: f64,
        yielded: usize,
        done: bool,
    },
    /// Quiet gaps (10 min – 6 h) separating bursts of 3–60 requests
    /// spaced 0.05–2 s apart. `remaining` counts arrivals left in the
    /// current burst; `bt` is the running clock.
    Bursty {
        rng: Rng,
        bt: f64,
        remaining: usize,
        done: bool,
    },
    /// 1–8 arrivals uniform over the window, pre-sorted at construction
    /// (bounded, so buffering stays O(1)-ish).
    Rare { buf: std::vec::IntoIter<f64> },
}

impl ArrivalStream {
    fn next_unthinned(&mut self) -> Option<f64> {
        let window = self.window;
        match &mut self.inner {
            StreamKind::Periodic { rng, period, t } => loop {
                if *t >= window {
                    return None;
                }
                // Small jitter (±2% of period). Jitter may push a tick
                // below zero (clamped) or past the window end (dropped):
                // arrivals must lie in [0, window).
                let jitter = (rng.f64() - 0.5) * 0.04 * *period;
                let ts = (*t + jitter).max(0.0);
                *t += *period;
                if ts < window {
                    return Some(ts);
                }
            },
            StreamKind::Poisson {
                rng,
                rate,
                t,
                yielded,
                done,
            } => {
                if *done {
                    return None;
                }
                let u: f64 = rng.f64().max(1e-12);
                *t += -u.ln() / *rate;
                if *t >= window || *yielded > 2_000_000 {
                    *done = true;
                    return None;
                }
                *yielded += 1;
                Some(*t)
            }
            StreamKind::Bursty {
                rng,
                bt,
                remaining,
                done,
            } => {
                if *done {
                    return None;
                }
                loop {
                    if *remaining > 0 {
                        *remaining -= 1;
                        *bt += log_uniform(rng, 0.05, 2.0);
                        if *bt >= window {
                            // Mirror the materialized path's inner break:
                            // the rest of the burst's gaps are never drawn.
                            *done = true;
                            return None;
                        }
                        return Some(*bt);
                    }
                    if *bt >= window {
                        *done = true;
                        return None;
                    }
                    *bt += log_uniform(rng, 600.0, 6.0 * 3600.0);
                    if *bt >= window {
                        *done = true;
                        return None;
                    }
                    *remaining = rng.usize_inclusive(3, 60);
                }
            }
            StreamKind::Rare { buf } => buf.next(),
        }
    }
}

impl Iterator for ArrivalStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        match &mut self.thin {
            None => self.next_unthinned(),
            Some(_) => loop {
                let t = self.next_unthinned()?;
                let (thin_rng, diurnal) = self.thin.as_mut().expect("checked above");
                if thin_rng.f64() < diurnal.rate_multiplier(t) {
                    return Some(t);
                }
            },
        }
    }
}

fn log_uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    let u: f64 = rng.f64();
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> TraceConfig {
        TraceConfig {
            functions: 60,
            window_secs: 24.0 * 3600.0,
            seed,
            diurnal: None,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_trace(&small_config(7));
        let b = generate_trace(&small_config(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_trace(&small_config(1));
        let b = generate_trace(&small_config(2));
        assert_ne!(a, b);
    }

    #[test]
    fn streaming_matches_materialized_exactly() {
        for seed in [3, 17, 0xA57AC3] {
            let config = TraceConfig {
                diurnal: if seed == 17 {
                    Some(DiurnalProfile::default())
                } else {
                    None
                },
                ..small_config(seed)
            };
            let trace = generate_trace(&config);
            for (id, f) in trace.functions.iter().enumerate() {
                let synth = synthesize_function(&config, id);
                let streamed: Vec<f64> = synth.arrivals().collect();
                assert_eq!(
                    f.arrivals, streamed,
                    "seed {seed} fn{id}: stream != materialized"
                );
                assert_eq!(synth.materialize(), *f);
            }
        }
    }

    #[test]
    fn synthesis_is_row_order_independent() {
        // Function i's profile and arrivals do not depend on how many
        // functions the fleet has or which are generated around it.
        let small = small_config(41);
        let large = TraceConfig {
            functions: 500,
            ..small.clone()
        };
        for id in [0, 7, 59] {
            let a = synthesize_function(&small, id);
            let b = synthesize_function(&large, id);
            assert_eq!(a.materialize(), b.materialize());
        }
    }

    #[test]
    fn arrival_streams_are_restartable() {
        let config = small_config(13);
        for id in 0..20 {
            let synth = synthesize_function(&config, id);
            let first: Vec<f64> = synth.arrivals().collect();
            let second: Vec<f64> = synth.arrivals().collect();
            assert_eq!(first, second, "fn{id}: arrivals() must be replayable");
        }
    }

    #[test]
    fn arrivals_are_sorted_and_strictly_inside_window() {
        // Many seeds so the periodic boundary case (jitter past the window
        // end) is actually exercised.
        for seed in 0..20 {
            let trace = generate_trace(&small_config(seed));
            for f in &trace.functions {
                for w in f.arrivals.windows(2) {
                    assert!(w[0] <= w[1], "arrivals must be sorted");
                }
                for &t in &f.arrivals {
                    assert!(
                        (0.0..24.0 * 3600.0).contains(&t),
                        "seed {seed} fn{}: {t} outside [0, window)",
                        f.id
                    );
                }
            }
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_windows() {
        for bad in [0.0, -60.0, f64::NAN, f64::INFINITY] {
            let config = TraceConfig {
                window_secs: bad,
                ..small_config(1)
            };
            assert!(config.validate().is_err(), "window {bad} must be rejected");
        }
        assert!(small_config(1).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid TraceConfig")]
    fn generate_panics_on_degenerate_window() {
        generate_trace(&TraceConfig {
            window_secs: 0.0,
            ..small_config(1)
        });
    }

    #[test]
    fn rate_distribution_is_heavy_tailed() {
        let trace = generate_trace(&TraceConfig {
            functions: 400,
            ..small_config(11)
        });
        let mut counts: Vec<usize> = trace.functions.iter().map(|f| f.invocations()).collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        let max = *counts.last().unwrap();
        assert!(
            max > median.max(1) * 20,
            "hot functions should dwarf the median (median={median}, max={max})"
        );
    }

    #[test]
    fn all_classes_appear() {
        let trace = generate_trace(&TraceConfig {
            functions: 300,
            ..small_config(5)
        });
        for class in [
            ArrivalClass::Periodic,
            ArrivalClass::Poisson,
            ArrivalClass::Bursty,
            ArrivalClass::Rare,
        ] {
            assert!(
                trace.functions.iter().any(|f| f.class == class),
                "missing class {class:?}"
            );
        }
    }

    /// Bucket total demand-driven arrivals by hour-of-day over a week.
    fn hourly_mass(trace: &TraceSet, classes: &[ArrivalClass]) -> Vec<usize> {
        let mut buckets = vec![0usize; 24];
        for f in &trace.functions {
            if !classes.contains(&f.class) {
                continue;
            }
            for &t in &f.arrivals {
                buckets[((t / 3600.0) % 24.0) as usize] += 1;
            }
        }
        buckets
    }

    #[test]
    fn diurnal_modulation_shifts_mass_to_peak_hours() {
        let week = TraceConfig {
            functions: 300,
            window_secs: 7.0 * 24.0 * 3600.0,
            seed: 23,
            diurnal: Some(DiurnalProfile {
                amplitude: 0.9,
                ..DiurnalProfile::default()
            }),
        };
        let trace = generate_trace(&week);
        let demand = [
            ArrivalClass::Poisson,
            ArrivalClass::Bursty,
            ArrivalClass::Rare,
        ];
        let buckets = hourly_mass(&trace, &demand);
        let peak = buckets[14]; // default peak_hour
        let trough = buckets[2]; // peak + 12, on the trough
        assert!(
            peak > trough * 2,
            "peak-hour mass {peak} should dwarf trough-hour mass {trough}"
        );
        // Timers are untouched by modulation: identical to the flat run.
        let flat = generate_trace(&TraceConfig {
            diurnal: None,
            ..week.clone()
        });
        for (a, b) in trace.functions.iter().zip(&flat.functions) {
            if a.class == ArrivalClass::Periodic {
                assert_eq!(a.arrivals, b.arrivals, "timers must not be thinned");
            }
        }
    }

    #[test]
    fn weekend_days_carry_less_demand_traffic() {
        let trace = generate_trace(&TraceConfig {
            functions: 300,
            window_secs: 7.0 * 24.0 * 3600.0,
            seed: 29,
            diurnal: Some(DiurnalProfile {
                weekend_factor: 0.4,
                ..DiurnalProfile::default()
            }),
        });
        let mut per_day = [0usize; 7];
        for f in &trace.functions {
            if f.class == ArrivalClass::Periodic {
                continue;
            }
            for &t in &f.arrivals {
                per_day[(t / 86_400.0) as usize] += 1;
            }
        }
        let weekday_mean = per_day[..5].iter().sum::<usize>() as f64 / 5.0;
        let weekend_mean = per_day[5..].iter().sum::<usize>() as f64 / 2.0;
        assert!(
            weekend_mean < weekday_mean * 0.8,
            "weekend {weekend_mean} vs weekday {weekday_mean}"
        );
    }
}
