//! Synthetic Azure-Functions-style trace generation (§8.6, Figures 13–14).
//!
//! The trace Microsoft published is per-minute counts; the raw arrival
//! process is proprietary. This generator synthesizes arrival processes
//! with the published *shape*:
//!
//! * invocation rates are extremely heavy-tailed — most functions fire a few
//!   times a day, a small minority fire many times a minute;
//! * many functions are timer-driven (near-periodic), the rest bursty or
//!   Poisson-like;
//! * per-function memory and duration distributions are broad and skewed;
//! * demand-driven traffic follows a diurnal + day-of-week cycle
//!   (see [`DiurnalProfile`]); timers do not.
//!
//! Generation is fully seeded and deterministic, and every arrival lies in
//! `[0, window_secs)`.

use super::reconstruct::fnv1a64;
use super::{
    validate_window, ArrivalClass, DiurnalProfile, FunctionTrace, TraceError, TraceSet, TraceSource,
};
use trim_rng::Rng;

/// Configuration for the trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of functions to synthesize.
    pub functions: usize,
    /// Window length in seconds (the paper simulates 24 h).
    pub window_secs: f64,
    /// RNG seed.
    pub seed: u64,
    /// Diurnal/day-of-week modulation of demand-driven classes
    /// (`None` = flat rates, the pre-modulation behavior).
    pub diurnal: Option<DiurnalProfile>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            functions: 400,
            window_secs: 24.0 * 3600.0,
            seed: 0xA57AC3,
            diurnal: None,
        }
    }
}

impl TraceConfig {
    /// Validate the configuration: the window must be finite and strictly
    /// positive, and any diurnal profile must be in range.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidWindow`] or [`TraceError::InvalidDiurnal`].
    pub fn validate(&self) -> Result<(), TraceError> {
        validate_window(self.window_secs)?;
        if let Some(diurnal) = &self.diurnal {
            diurnal.validate()?;
        }
        Ok(())
    }
}

/// Generate a synthetic Azure-style trace.
///
/// # Panics
///
/// Panics on an invalid configuration (degenerate window or out-of-range
/// diurnal profile) — call [`TraceConfig::validate`] first to surface the
/// error gracefully.
pub fn generate_trace(config: &TraceConfig) -> TraceSet {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid TraceConfig: {e}"));
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut functions = Vec::with_capacity(config.functions);
    for id in 0..config.functions {
        let class_roll: f64 = rng.f64();
        // Rough class mix per Shahrad et al.: ~29% timers, plus a long tail
        // of rare functions and a small hot set.
        let class = if class_roll < 0.30 {
            ArrivalClass::Periodic
        } else if class_roll < 0.55 {
            ArrivalClass::Rare
        } else if class_roll < 0.85 {
            ArrivalClass::Poisson
        } else {
            ArrivalClass::Bursty
        };
        // Heavy-tailed resource profile: log-uniform memory and duration.
        let mem_mb = log_uniform(&mut rng, 64.0, 2048.0);
        let duration_ms = log_uniform(&mut rng, 5.0, 20_000.0);
        let mut arrivals = match class {
            ArrivalClass::Periodic => periodic_arrivals(&mut rng, config.window_secs),
            ArrivalClass::Poisson => poisson_arrivals(&mut rng, config.window_secs),
            ArrivalClass::Bursty => bursty_arrivals(&mut rng, config.window_secs),
            ArrivalClass::Rare => rare_arrivals(&mut rng, config.window_secs),
        };
        let name = format!("fn{id}");
        // Timers fire on schedule whatever the hour; human-driven traffic
        // is thinned by the time-of-day acceptance probability. Thinning
        // draws from a dedicated per-function stream so the underlying
        // arrival skeleton (and every other function) is identical with
        // and without modulation.
        if let (Some(diurnal), false) = (&config.diurnal, class == ArrivalClass::Periodic) {
            let mut thin_rng = Rng::seed_from_u64(config.seed ^ fnv1a64(name.as_bytes()));
            arrivals.retain(|&t| thin_rng.f64() < diurnal.rate_multiplier(t));
        }
        functions.push(FunctionTrace {
            id: id as u32,
            name,
            class,
            mem_mb,
            // The dataset's percentile columns, approximated with fixed
            // skew factors for synthetic functions.
            p99_mem_mb: mem_mb * 1.3,
            duration_ms,
            p50_duration_ms: duration_ms * 0.75,
            p99_duration_ms: duration_ms * 2.5,
            arrivals,
        });
    }
    TraceSet {
        window_secs: config.window_secs,
        functions,
        source: TraceSource::Synthetic { seed: config.seed },
    }
}

fn log_uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    let u: f64 = rng.f64();
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

fn periodic_arrivals(rng: &mut Rng, window: f64) -> Vec<f64> {
    // Periods from 1 minute to 4 hours, log-uniform.
    let period = log_uniform(rng, 60.0, 4.0 * 3600.0);
    let phase: f64 = rng.f64() * period;
    let mut out = Vec::new();
    let mut t = phase;
    while t < window {
        // Small jitter (±2% of period). Jitter may push a tick below zero
        // (clamped) or past the window end (dropped): arrivals must lie in
        // [0, window).
        let jitter = (rng.f64() - 0.5) * 0.04 * period;
        let ts = (t + jitter).max(0.0);
        if ts < window {
            out.push(ts);
        }
        t += period;
    }
    out.sort_by(f64::total_cmp);
    out
}

fn poisson_arrivals(rng: &mut Rng, window: f64) -> Vec<f64> {
    // Rates log-uniform from one per 2 h to one per 5 s.
    let rate = log_uniform(rng, 1.0 / 7200.0, 0.2);
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        let u: f64 = rng.f64().max(1e-12);
        t += -u.ln() / rate;
        if t >= window || out.len() > 2_000_000 {
            break;
        }
        out.push(t);
    }
    out
}

fn bursty_arrivals(rng: &mut Rng, window: f64) -> Vec<f64> {
    let mut out = Vec::new();
    let mut t = 0.0;
    while t < window {
        // Quiet gap: 10 min – 6 h.
        t += log_uniform(rng, 600.0, 6.0 * 3600.0);
        if t >= window {
            break;
        }
        // Burst of 3–60 requests spaced 0.05–2 s apart.
        let burst_len = rng.usize_inclusive(3, 60);
        let mut bt = t;
        for _ in 0..burst_len {
            bt += log_uniform(rng, 0.05, 2.0);
            if bt >= window {
                break;
            }
            out.push(bt);
        }
        t = bt;
    }
    out
}

fn rare_arrivals(rng: &mut Rng, window: f64) -> Vec<f64> {
    let n = rng.usize_inclusive(1, 8);
    let mut out: Vec<f64> = (0..n).map(|_| rng.f64() * window).collect();
    out.sort_by(f64::total_cmp);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> TraceConfig {
        TraceConfig {
            functions: 60,
            window_secs: 24.0 * 3600.0,
            seed,
            diurnal: None,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_trace(&small_config(7));
        let b = generate_trace(&small_config(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_trace(&small_config(1));
        let b = generate_trace(&small_config(2));
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_and_strictly_inside_window() {
        // Many seeds so the periodic boundary case (jitter past the window
        // end) is actually exercised.
        for seed in 0..20 {
            let trace = generate_trace(&small_config(seed));
            for f in &trace.functions {
                for w in f.arrivals.windows(2) {
                    assert!(w[0] <= w[1], "arrivals must be sorted");
                }
                for &t in &f.arrivals {
                    assert!(
                        (0.0..24.0 * 3600.0).contains(&t),
                        "seed {seed} fn{}: {t} outside [0, window)",
                        f.id
                    );
                }
            }
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_windows() {
        for bad in [0.0, -60.0, f64::NAN, f64::INFINITY] {
            let config = TraceConfig {
                window_secs: bad,
                ..small_config(1)
            };
            assert!(config.validate().is_err(), "window {bad} must be rejected");
        }
        assert!(small_config(1).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid TraceConfig")]
    fn generate_panics_on_degenerate_window() {
        generate_trace(&TraceConfig {
            window_secs: 0.0,
            ..small_config(1)
        });
    }

    #[test]
    fn rate_distribution_is_heavy_tailed() {
        let trace = generate_trace(&TraceConfig {
            functions: 400,
            ..small_config(11)
        });
        let mut counts: Vec<usize> = trace.functions.iter().map(|f| f.invocations()).collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        let max = *counts.last().unwrap();
        assert!(
            max > median.max(1) * 20,
            "hot functions should dwarf the median (median={median}, max={max})"
        );
    }

    #[test]
    fn all_classes_appear() {
        let trace = generate_trace(&TraceConfig {
            functions: 300,
            ..small_config(5)
        });
        for class in [
            ArrivalClass::Periodic,
            ArrivalClass::Poisson,
            ArrivalClass::Bursty,
            ArrivalClass::Rare,
        ] {
            assert!(
                trace.functions.iter().any(|f| f.class == class),
                "missing class {class:?}"
            );
        }
    }

    /// Bucket total demand-driven arrivals by hour-of-day over a week.
    fn hourly_mass(trace: &TraceSet, classes: &[ArrivalClass]) -> Vec<usize> {
        let mut buckets = vec![0usize; 24];
        for f in &trace.functions {
            if !classes.contains(&f.class) {
                continue;
            }
            for &t in &f.arrivals {
                buckets[((t / 3600.0) % 24.0) as usize] += 1;
            }
        }
        buckets
    }

    #[test]
    fn diurnal_modulation_shifts_mass_to_peak_hours() {
        let week = TraceConfig {
            functions: 300,
            window_secs: 7.0 * 24.0 * 3600.0,
            seed: 23,
            diurnal: Some(DiurnalProfile {
                amplitude: 0.9,
                ..DiurnalProfile::default()
            }),
        };
        let trace = generate_trace(&week);
        let demand = [
            ArrivalClass::Poisson,
            ArrivalClass::Bursty,
            ArrivalClass::Rare,
        ];
        let buckets = hourly_mass(&trace, &demand);
        let peak = buckets[14]; // default peak_hour
        let trough = buckets[2]; // peak + 12, on the trough
        assert!(
            peak > trough * 2,
            "peak-hour mass {peak} should dwarf trough-hour mass {trough}"
        );
        // Timers are untouched by modulation: identical to the flat run.
        let flat = generate_trace(&TraceConfig {
            diurnal: None,
            ..week.clone()
        });
        for (a, b) in trace.functions.iter().zip(&flat.functions) {
            if a.class == ArrivalClass::Periodic {
                assert_eq!(a.arrivals, b.arrivals, "timers must not be thinned");
            }
        }
    }

    #[test]
    fn weekend_days_carry_less_demand_traffic() {
        let trace = generate_trace(&TraceConfig {
            functions: 300,
            window_secs: 7.0 * 24.0 * 3600.0,
            seed: 29,
            diurnal: Some(DiurnalProfile {
                weekend_factor: 0.4,
                ..DiurnalProfile::default()
            }),
        });
        let mut per_day = [0usize; 7];
        for f in &trace.functions {
            if f.class == ArrivalClass::Periodic {
                continue;
            }
            for &t in &f.arrivals {
                per_day[(t / 86_400.0) as usize] += 1;
            }
        }
        let weekday_mean = per_day[..5].iter().sum::<usize>() as f64 / 5.0;
        let weekend_mean = per_day[5..].iter().sum::<usize>() as f64 / 2.0;
        assert!(
            weekend_mean < weekday_mean * 0.8,
            "weekend {weekend_mean} vs weekday {weekday_mean}"
        );
    }
}
