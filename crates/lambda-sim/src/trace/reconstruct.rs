//! Deterministic reconstruction of arrival timestamps from per-minute counts.
//!
//! The Azure Functions dataset publishes *how many* invocations each function
//! received per minute, not *when* within the minute they landed. For pool
//! simulation the intra-minute placement matters (it decides whether
//! concurrent arrivals overlap), so we reconstruct it: for a minute with
//! count `c`, draw `c` uniform offsets in `[0, 60)` from a per-function
//! seeded RNG and sort.
//!
//! The RNG stream is seeded with `seed ^ fnv1a64(function_name)`, so a
//! function's reconstructed arrivals depend only on the global seed and its
//! own name — never on row order or on other functions. Loading the same CSV
//! with the same seed is byte-identical, whatever order the rows appear in.

use trim_rng::Rng;

const MINUTE_SECS: f64 = 60.0;

/// FNV-1a 64-bit hash of a byte string — dependency-free, stable across
/// platforms, used to derive per-function RNG streams.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Reconstruct sorted arrival timestamps from per-minute invocation counts.
///
/// Minute `m` with count `c` contributes `c` timestamps uniform in
/// `[60 m, 60 (m + 1))`; the result is sorted ascending and every timestamp
/// lies in `[0, 60 * counts.len())`.
pub fn reconstruct_arrivals(counts: &[u32], seed: u64, function_name: &str) -> Vec<f64> {
    ReconstructedArrivals::new(counts, seed, function_name).collect()
}

/// Streaming form of [`reconstruct_arrivals`]: iterates the same sorted
/// timestamps while buffering only one minute's worth of arrivals at a
/// time, so a dense multi-day count row replays in bounded memory. The
/// materialized function is a `collect()` of this iterator, keeping the
/// two byte-identical by construction.
#[derive(Debug, Clone)]
pub struct ReconstructedArrivals<'a> {
    counts: std::iter::Enumerate<std::slice::Iter<'a, u32>>,
    rng: Rng,
    /// Current minute's sorted offsets, drained front to back.
    buffer: Vec<f64>,
    next: usize,
}

impl<'a> ReconstructedArrivals<'a> {
    /// Start streaming the arrivals for one function's per-minute counts,
    /// using the same `seed ^ fnv1a64(name)` stream as the materialized
    /// path.
    pub fn new(counts: &'a [u32], seed: u64, function_name: &str) -> Self {
        ReconstructedArrivals {
            counts: counts.iter().enumerate(),
            rng: Rng::seed_from_u64(seed ^ fnv1a64(function_name.as_bytes())),
            buffer: Vec::new(),
            next: 0,
        }
    }
}

impl Iterator for ReconstructedArrivals<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        loop {
            if self.next < self.buffer.len() {
                let t = self.buffer[self.next];
                self.next += 1;
                return Some(t);
            }
            let (minute, &count) = self.counts.next()?;
            let base = minute as f64 * MINUTE_SECS;
            self.buffer.clear();
            self.next = 0;
            for _ in 0..count {
                // rng.f64() < 1.0, so base + offset < base + 60 always holds.
                self.buffer.push(base + self.rng.f64() * MINUTE_SECS);
            }
            self.buffer.sort_by(f64::total_cmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_is_deterministic() {
        let counts = [3, 0, 7, 1];
        let a = reconstruct_arrivals(&counts, 42, "fn-a");
        let b = reconstruct_arrivals(&counts, 42, "fn-a");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_or_name_changes_placement() {
        let counts = [5, 5];
        let base = reconstruct_arrivals(&counts, 1, "fn-a");
        assert_ne!(base, reconstruct_arrivals(&counts, 2, "fn-a"));
        assert_ne!(base, reconstruct_arrivals(&counts, 1, "fn-b"));
    }

    #[test]
    fn per_minute_counts_are_preserved_and_sorted() {
        let counts = [4, 0, 2, 9, 1];
        let arrivals = reconstruct_arrivals(&counts, 7, "f");
        assert_eq!(arrivals.len(), 16);
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for (minute, &count) in counts.iter().enumerate() {
            let lo = minute as f64 * 60.0;
            let hi = lo + 60.0;
            let in_minute = arrivals.iter().filter(|&&t| t >= lo && t < hi).count();
            assert_eq!(in_minute as u32, count, "minute {minute}");
        }
    }

    #[test]
    fn all_arrivals_inside_window() {
        let counts = vec![50; 10];
        let arrivals = reconstruct_arrivals(&counts, 3, "hot");
        let window = 60.0 * counts.len() as f64;
        for &t in &arrivals {
            assert!((0.0..window).contains(&t));
        }
    }

    #[test]
    fn streaming_reconstruction_matches_materialized() {
        let counts = [4, 0, 2, 9, 1, 0, 0, 3];
        let streamed: Vec<f64> = ReconstructedArrivals::new(&counts, 7, "f").collect();
        assert_eq!(streamed, reconstruct_arrivals(&counts, 7, "f"));
    }

    #[test]
    fn empty_counts_give_no_arrivals() {
        assert!(reconstruct_arrivals(&[], 1, "x").is_empty());
        assert!(reconstruct_arrivals(&[0, 0, 0], 1, "x").is_empty());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
