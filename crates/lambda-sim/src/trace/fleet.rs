//! Fleet-scale streaming replay: sweep a synthetic fleet through the pool
//! without ever materializing a trace.
//!
//! [`super::replay_trace`] keeps the whole [`super::TraceSet`] — every
//! arrival of every function — plus per-invocation E2E samples in memory.
//! That is the right shape for fixture-sized traces where the per-function
//! detail matters, but a 40k-function synthetic fleet carries ~10⁸
//! invocations × 8 bytes per variant, which does not fit.
//!
//! [`replay_fleet`] takes the [`super::TraceConfig`] instead of a
//! generated trace and exploits the generator's per-function seeding
//! ([`synthesize_function`] is row-order independent): workers pull
//! function indices from an atomic counter, synthesize the function's
//! profile on the spot, and stream its arrivals straight through
//! [`simulate_pool_ext_stream_traced`] once per (mode × keep-alive)
//! variant. Memory per worker is O(live pool instances); fleet-wide state
//! is O(functions × variants) pool-stat records plus fixed-size E2E
//! histograms — bounded however many invocations the window holds.
//!
//! Determinism across worker counts follows the slotted idiom of
//! [`super::replay_trace`]: per-function stats land in per-index slots and
//! are aggregated in function order (f64 sums see one fixed order), and
//! the E2E histograms are u64 counters whose merges commute. The rendered
//! metrics are byte-identical whatever `jobs` is — pinned by tests.
//!
//! E2E percentiles are estimated from a log-scale histogram (60 bins per
//! decade over 10⁻⁴–10⁶ s) rather than exact order statistics; the
//! estimate is within one bin (≈ 4% relative) of the exact value, which is
//! ample for fleet-level latency curves. Costs, counts, and cold-ratio
//! deciles are exact and bit-identical to what [`super::replay_trace`]
//! reports on the materialized equivalent of the same config.

use super::replay::ReplayOptions;
use super::synthetic::{synthesize_function, SyntheticFunction, TraceConfig};
use super::TraceError;
use crate::metrics::percentile;
use crate::platform::{AppProfile, Platform, StartMode};
use crate::pool::{simulate_pool_ext_stream_traced, ExtPoolStats, PoolOptions};
use crate::pricing::SnapStartPricing;
use crate::providers::providers;

/// Number of E2E histogram bins: 60 per decade across 10 decades.
const HIST_BINS: usize = 600;
/// Lower edge of the histogram, log10 seconds.
const HIST_LOG_MIN: f64 = -4.0;
/// Upper edge of the histogram, log10 seconds.
const HIST_LOG_MAX: f64 = 6.0;

fn hist_bin(secs: f64) -> usize {
    let log = secs.max(1e-300).log10();
    let pos = (log - HIST_LOG_MIN) / (HIST_LOG_MAX - HIST_LOG_MIN) * HIST_BINS as f64;
    (pos as isize).clamp(0, HIST_BINS as isize - 1) as usize
}

/// Representative latency for `p`-th percentile from cumulative counts:
/// the geometric midpoint of the first bin whose cumulative mass crosses
/// the rank. `None` when the histogram is empty (zero arrivals in the
/// window — an all-filtered trace or a rare function that never fired):
/// there is no order statistic to estimate, and the caller must decide
/// what an absent percentile renders as rather than divide by zero here.
fn hist_percentile(hist: &[u64], p: f64) -> Option<f64> {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = (p / 100.0 * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (bin, &count) in hist.iter().enumerate() {
        cum += count;
        if cum >= rank {
            let width = (HIST_LOG_MAX - HIST_LOG_MIN) / HIST_BINS as f64;
            let mid = HIST_LOG_MIN + (bin as f64 + 0.5) * width;
            return Some(10f64.powf(mid));
        }
    }
    Some(10f64.powf(HIST_LOG_MAX))
}

/// Aggregate results for one (mode × keep-alive) variant across the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetVariantReport {
    /// Start mode of this variant.
    pub mode: StartMode,
    /// Keep-alive of this variant, seconds.
    pub keep_alive_secs: f64,
    /// Total invocations.
    pub invocations: u64,
    /// Total cold starts.
    pub cold_starts: u64,
    /// Total warm starts.
    pub warm_starts: u64,
    /// Total queued requests.
    pub queued_requests: u64,
    /// Sum of Equation-1 invocation costs, dollars (AWS pricing).
    pub invocation_cost: f64,
    /// Reserved provisioned capacity cost, dollars.
    pub provisioned_cost: f64,
    /// SnapStart snapshot cache + restore cost, dollars (Restore only).
    pub snapstart_cost: f64,
    /// SnapStart cost share of the total bill, in `[0, 1]`.
    pub snapstart_share: f64,
    /// p50 of per-invocation E2E latency, seconds (histogram estimate).
    pub e2e_p50_secs: f64,
    /// p95 of per-invocation E2E latency, seconds (histogram estimate).
    pub e2e_p95_secs: f64,
    /// p99 of per-invocation E2E latency, seconds (histogram estimate).
    pub e2e_p99_secs: f64,
    /// Deciles (10th..100th percentile) of the per-function cold-start
    /// ratio distribution (functions with ≥ 1 invocation). Exact.
    pub cold_ratio_deciles: [f64; 10],
    /// Total window bill under each provider's billing rules.
    pub provider_costs: Vec<(&'static str, f64)>,
}

impl FleetVariantReport {
    /// Cold-start ratio across the whole fleet.
    pub fn cold_ratio(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.cold_starts as f64 / self.invocations as f64
        }
    }

    /// Total dollars: invocations + provisioned capacity + SnapStart.
    pub fn total_cost(&self) -> f64 {
        self.invocation_cost + self.provisioned_cost + self.snapstart_cost
    }
}

/// Result of a fleet-scale streaming replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Window length replayed, seconds.
    pub window_secs: f64,
    /// Fleet size (functions replayed).
    pub functions: usize,
    /// Invocations per variant (every variant replays the same arrivals).
    pub invocations: u64,
    /// Per-variant aggregates, ordered `modes × keep_alive_secs`.
    pub variants: Vec<FleetVariantReport>,
}

fn app_for(synth: &SyntheticFunction, options: &ReplayOptions) -> AppProfile {
    AppProfile::new(
        synth.name.clone(),
        options.image_mb,
        options.init_secs,
        synth.duration_ms / 1000.0,
        synth.mem_mb,
    )
}

fn variant_pools(options: &ReplayOptions, window_secs: f64) -> Vec<PoolOptions> {
    options
        .modes
        .iter()
        .flat_map(|&mode| {
            options
                .keep_alive_secs
                .iter()
                .map(move |&keep_alive_secs| (mode, keep_alive_secs))
        })
        .map(|(mode, keep_alive_secs)| PoolOptions {
            keep_alive_secs,
            mode,
            provisioned: options.provisioned,
            max_concurrency: options.max_concurrency,
            window_secs,
        })
        .collect()
}

/// Replay one function's arrival stream under every variant, adding its
/// E2E samples to `hists` (one histogram per variant) and returning the
/// per-variant pool stats.
fn replay_streamed(
    platform: &Platform,
    config: &TraceConfig,
    id: usize,
    pools: &[PoolOptions],
    options: &ReplayOptions,
    hists: &mut [Vec<u64>],
) -> Vec<ExtPoolStats> {
    let synth = synthesize_function(config, id);
    let app = app_for(&synth, options);
    pools
        .iter()
        .zip(hists.iter_mut())
        .map(|(pool, hist)| {
            simulate_pool_ext_stream_traced(platform, &app, synth.arrivals(), pool, |e| {
                hist[hist_bin(e.finish - e.arrival)] += 1;
            })
            .expect("synthetic arrival streams are sorted and NaN-free")
        })
        .collect()
}

/// Stream-replay the synthetic fleet described by `config` under every
/// (mode × keep-alive) variant of `options`, fanning function indices out
/// over `options.jobs` workers. No arrival vector is ever materialized;
/// memory stays bounded by fleet size, not invocation count. The report is
/// byte-identical whatever the worker count.
///
/// # Errors
///
/// [`TraceError::InvalidWindow`] / [`TraceError::InvalidDiurnal`] if
/// `config` is degenerate.
pub fn replay_fleet(
    platform: &Platform,
    config: &TraceConfig,
    options: &ReplayOptions,
) -> Result<FleetReport, TraceError> {
    config.validate()?;
    let n = config.functions;
    let pools = variant_pools(options, config.window_secs);
    let nv = pools.len();
    let threads = options.jobs.max(1).min(n.max(1));

    let mut slots: Vec<Option<Vec<ExtPoolStats>>> = Vec::new();
    slots.resize_with(n, || None);
    let mut hists: Vec<Vec<u64>> = vec![vec![0u64; HIST_BINS]; nv];
    if threads <= 1 {
        for (id, slot) in slots.iter_mut().enumerate() {
            *slot = Some(replay_streamed(
                platform, config, id, &pools, options, &mut hists,
            ));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let shared_slots = std::sync::Mutex::new(&mut slots);
        let shared_hists = std::sync::Mutex::new(&mut hists);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local_hists: Vec<Vec<u64>> = vec![vec![0u64; HIST_BINS]; nv];
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let stats =
                            replay_streamed(platform, config, i, &pools, options, &mut local_hists);
                        shared_slots.lock().expect("fleet slots poisoned")[i] = Some(stats);
                    }
                    // u64 histogram merges commute, so merge order (worker
                    // finish order) cannot affect the result.
                    let mut global = shared_hists.lock().expect("fleet hists poisoned");
                    for (g, l) in global.iter_mut().zip(&local_hists) {
                        for (gb, &lb) in g.iter_mut().zip(l) {
                            *gb += lb;
                        }
                    }
                });
            }
        });
    }

    // Aggregate in function order (never worker-finish order) so f64 sums
    // are bit-identical across worker counts. Profiles are re-synthesized
    // per function — three RNG draws, no arrivals — to price the cold/warm
    // split, with the same formulas as `replay_trace`.
    let snap_pricing = SnapStartPricing::default();
    let provider_models = providers();
    let mode_keeps: Vec<(StartMode, f64)> =
        pools.iter().map(|p| (p.mode, p.keep_alive_secs)).collect();
    let mut variants: Vec<FleetVariantReport> = mode_keeps
        .iter()
        .map(|&(mode, keep_alive_secs)| FleetVariantReport {
            mode,
            keep_alive_secs,
            invocations: 0,
            cold_starts: 0,
            warm_starts: 0,
            queued_requests: 0,
            invocation_cost: 0.0,
            provisioned_cost: 0.0,
            snapstart_cost: 0.0,
            snapstart_share: 0.0,
            e2e_p50_secs: 0.0,
            e2e_p95_secs: 0.0,
            e2e_p99_secs: 0.0,
            cold_ratio_deciles: [0.0; 10],
            provider_costs: provider_models.iter().map(|p| (p.name, 0.0)).collect(),
        })
        .collect();
    let mut cold_ratios: Vec<Vec<f64>> = vec![Vec::new(); nv];
    for (id, slot) in slots.iter().enumerate() {
        let per_variant = slot.as_ref().expect("every function produced a result");
        let synth = synthesize_function(config, id);
        let app = app_for(&synth, options);
        let checkpoint = &platform.config.checkpoint;
        for (v, (stats, report)) in per_variant.iter().zip(variants.iter_mut()).enumerate() {
            report.invocations += stats.invocations();
            report.cold_starts += stats.cold_starts;
            report.warm_starts += stats.warm_starts;
            report.queued_requests += stats.queued_requests;
            report.invocation_cost += stats.invocation_cost;
            report.provisioned_cost += stats.provisioned_cost;
            if stats.invocations() > 0 {
                cold_ratios[v].push(stats.cold_starts as f64 / stats.invocations() as f64);
            }
            let (snapshot_mb, cold_billable_ms) = match report.mode {
                StartMode::Standard => (0.0, app.cold_billable_ms()),
                StartMode::Restore => (
                    checkpoint.snapshot_mb(app.mem_mb),
                    (checkpoint.cr_init_secs(app.mem_mb) + app.exec_secs) * 1000.0,
                ),
            };
            if report.mode == StartMode::Restore {
                report.snapstart_cost +=
                    snap_pricing.window_cost(snapshot_mb, config.window_secs, stats.cold_starts);
            }
            for (provider, total) in provider_models.iter().zip(report.provider_costs.iter_mut()) {
                total.1 += provider.pricing.cost_for_invocations(
                    app.mem_mb,
                    cold_billable_ms,
                    stats.cold_starts,
                ) + provider.pricing.cost_for_invocations(
                    app.mem_mb,
                    app.warm_billable_ms(),
                    stats.warm_starts,
                );
            }
        }
    }
    for (v, report) in variants.iter_mut().enumerate() {
        // Absent percentiles (zero arrivals) render as an explicit 0.0
        // zero-stat slot, never as NaN from an empty histogram.
        report.e2e_p50_secs = hist_percentile(&hists[v], 50.0).unwrap_or(0.0);
        report.e2e_p95_secs = hist_percentile(&hists[v], 95.0).unwrap_or(0.0);
        report.e2e_p99_secs = hist_percentile(&hists[v], 99.0).unwrap_or(0.0);
        for d in 1..=10 {
            report.cold_ratio_deciles[d - 1] = percentile(&cold_ratios[v], d as f64 * 10.0);
        }
        let total = report.total_cost();
        report.snapstart_share = if total > 0.0 {
            report.snapstart_cost / total
        } else {
            0.0
        };
    }
    let invocations = variants.first().map_or(0, |v| v.invocations);
    Ok(FleetReport {
        window_secs: config.window_secs,
        functions: n,
        invocations,
        variants,
    })
}

fn mode_name(mode: StartMode) -> &'static str {
    match mode {
        StartMode::Standard => "standard",
        StartMode::Restore => "restore",
    }
}

/// Render the deterministic metrics block of a fleet replay as a JSON
/// string — shared by the `experiments -- replay` fleet-scaling sweep and
/// the determinism tests (byte-identity across worker counts).
pub fn render_fleet_metrics_json(report: &FleetReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"window_secs\": {},\n  \"functions\": {},\n  \"invocations\": {},\n",
        report.window_secs, report.functions, report.invocations
    ));
    out.push_str("  \"variants\": [\n");
    for (i, v) in report.variants.iter().enumerate() {
        let deciles: Vec<String> = v
            .cold_ratio_deciles
            .iter()
            .map(|d| format!("{d}"))
            .collect();
        let provider_costs: Vec<String> = v
            .provider_costs
            .iter()
            .map(|(name, cost)| format!("\"{name}\": {cost}"))
            .collect();
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"keep_alive_secs\": {}, \"invocations\": {}, \
             \"cold_starts\": {}, \"warm_starts\": {}, \"queued_requests\": {}, \
             \"cold_ratio\": {}, \"invocation_cost_usd\": {}, \"provisioned_cost_usd\": {}, \
             \"snapstart_cost_usd\": {}, \"snapstart_share\": {}, \"total_cost_usd\": {}, \
             \"e2e_p50_s\": {}, \"e2e_p95_s\": {}, \"e2e_p99_s\": {}, \
             \"cold_ratio_deciles\": [{}], \"provider_cost_usd\": {{{}}}}}{}\n",
            mode_name(v.mode),
            v.keep_alive_secs,
            v.invocations,
            v.cold_starts,
            v.warm_starts,
            v.queued_requests,
            v.cold_ratio(),
            v.invocation_cost,
            v.provisioned_cost,
            v.snapstart_cost,
            v.snapstart_share,
            v.total_cost(),
            v.e2e_p50_secs,
            v.e2e_p95_secs,
            v.e2e_p99_secs,
            deciles.join(", "),
            provider_costs.join(", "),
            if i + 1 < report.variants.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::super::replay::{replay_trace, ReplayOptions};
    use super::super::synthetic::generate_trace;
    use super::*;

    fn small_config() -> TraceConfig {
        TraceConfig {
            functions: 24,
            window_secs: 4.0 * 3600.0,
            seed: 99,
            diurnal: None,
        }
    }

    #[test]
    fn fleet_counts_and_costs_match_materialized_replay_exactly() {
        let config = small_config();
        let platform = Platform::default();
        let options = ReplayOptions::default();
        let fleet = replay_fleet(&platform, &config, &options).expect("valid config");
        let replay = replay_trace(&platform, &generate_trace(&config), &options);
        assert_eq!(fleet.functions, replay.functions.len());
        assert_eq!(fleet.variants.len(), replay.variants.len());
        for (fv, rv) in fleet.variants.iter().zip(&replay.variants) {
            assert_eq!(fv.mode, rv.mode);
            assert_eq!(fv.keep_alive_secs, rv.keep_alive_secs);
            assert_eq!(fv.invocations, rv.invocations);
            assert_eq!(fv.cold_starts, rv.cold_starts);
            assert_eq!(fv.warm_starts, rv.warm_starts);
            assert_eq!(fv.queued_requests, rv.queued_requests);
            // Same stats summed in the same (function) order: bit-identical.
            assert_eq!(fv.invocation_cost, rv.invocation_cost);
            assert_eq!(fv.provisioned_cost, rv.provisioned_cost);
            assert_eq!(fv.snapstart_cost, rv.snapstart_cost);
            assert_eq!(fv.provider_costs, rv.provider_costs);
            // Histogram percentiles are estimates: within one log-bin
            // (≈ 4%) of the exact order statistic.
            for (est, exact) in [
                (fv.e2e_p50_secs, rv.e2e_p50_secs),
                (fv.e2e_p95_secs, rv.e2e_p95_secs),
                (fv.e2e_p99_secs, rv.e2e_p99_secs),
            ] {
                assert!(
                    est / exact > 0.95 && est / exact < 1.05,
                    "histogram percentile {est} too far from exact {exact}"
                );
            }
        }
    }

    #[test]
    fn fleet_replay_is_deterministic_across_jobs() {
        let config = small_config();
        let platform = Platform::default();
        let base = ReplayOptions::default();
        let renders: Vec<String> = [1usize, 2, 8]
            .into_iter()
            .map(|jobs| {
                let options = ReplayOptions {
                    jobs,
                    ..base.clone()
                };
                render_fleet_metrics_json(
                    &replay_fleet(&platform, &config, &options).expect("valid config"),
                )
            })
            .collect();
        assert_eq!(renders[0], renders[1], "jobs=1 vs jobs=2");
        assert_eq!(renders[0], renders[2], "jobs=1 vs jobs=8");
    }

    #[test]
    fn degenerate_config_is_a_typed_error() {
        let config = TraceConfig {
            window_secs: 0.0,
            ..small_config()
        };
        assert!(replay_fleet(&Platform::default(), &config, &ReplayOptions::default()).is_err());
    }

    #[test]
    fn empty_fleet_replays_to_zeroes() {
        let config = TraceConfig {
            functions: 0,
            ..small_config()
        };
        let report =
            replay_fleet(&Platform::default(), &config, &ReplayOptions::default()).expect("valid");
        assert_eq!(report.functions, 0);
        assert_eq!(report.invocations, 0);
        for v in &report.variants {
            assert_eq!(v.invocations, 0);
            assert_eq!(v.total_cost(), 0.0);
        }
    }

    #[test]
    fn histogram_percentiles_are_monotone() {
        let mut hist = vec![0u64; HIST_BINS];
        hist[100] = 50;
        hist[200] = 40;
        hist[300] = 10;
        let p50 = hist_percentile(&hist, 50.0).expect("non-empty histogram");
        let p95 = hist_percentile(&hist, 95.0).expect("non-empty histogram");
        let p99 = hist_percentile(&hist, 99.0).expect("non-empty histogram");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(hist_percentile(&[0u64; HIST_BINS], 50.0), None);
    }

    #[test]
    fn zero_arrival_fleet_reports_zero_stat_slots() {
        // A window short enough that every synthetic function's first
        // arrival falls outside it: the empty histograms must surface as
        // explicit zero slots, and the render must carry no NaN.
        let config = TraceConfig {
            functions: 3,
            window_secs: 1e-6,
            seed: 5,
            diurnal: None,
        };
        let report =
            replay_fleet(&Platform::default(), &config, &ReplayOptions::default()).expect("valid");
        assert_eq!(report.invocations, 0);
        for v in &report.variants {
            assert_eq!(v.invocations, 0);
            assert_eq!(v.cold_ratio(), 0.0);
            assert_eq!(
                (v.e2e_p50_secs, v.e2e_p95_secs, v.e2e_p99_secs),
                (0.0, 0.0, 0.0)
            );
            assert_eq!(v.cold_ratio_deciles, [0.0; 10]);
        }
        let json = render_fleet_metrics_json(&report);
        assert!(!json.contains("NaN"), "{json}");
    }
}
