//! CSV loader for the Azure-Functions-dataset schema.
//!
//! The public dataset (Shahrad et al., ATC'20) ships per-function rows of
//! per-minute invocation counts joined with duration/memory percentile
//! tables. We load a single pre-joined CSV in that shape:
//!
//! ```csv
//! function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb,m0,m1,...
//! f1a2b3,http,120,95,800,192,256,0,3,1,...
//! ```
//!
//! `m0..mN` are invocation counts for consecutive minutes; the window length
//! is `60 × N` seconds. Intra-minute arrival times are reconstructed
//! deterministically per function (see [`super::reconstruct`]). Every parse
//! failure is a typed [`TraceError`] carrying the line/field it came from.

use super::reconstruct::reconstruct_arrivals;
use super::{ArrivalClass, FunctionTrace, TraceError, TraceSet, TraceSource};
use std::collections::HashSet;
use std::path::Path;

/// The fixed (non-minute) columns, in schema order.
const FIXED_COLUMNS: [&str; 7] = [
    "function",
    "trigger",
    "avg_duration_ms",
    "p50_duration_ms",
    "p99_duration_ms",
    "avg_mem_mb",
    "p99_mem_mb",
];

/// Load a trace CSV from disk. See [`parse_trace_csv`].
///
/// # Errors
///
/// [`TraceError::Io`] on read failure, otherwise any [`parse_trace_csv`]
/// error.
pub fn load_trace_csv(path: impl AsRef<Path>, seed: u64) -> Result<TraceSet, TraceError> {
    let path = path.as_ref();
    let content = std::fs::read_to_string(path)
        .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
    parse_trace_csv(&content, seed)
}

/// Parse an Azure-schema trace CSV from a string. `seed` drives the
/// deterministic intra-minute arrival reconstruction; the same content and
/// seed always yield an identical [`TraceSet`], independent of row order
/// per function.
///
/// # Errors
///
/// A typed [`TraceError`] naming the offending line, field, or cell.
pub fn parse_trace_csv(content: &str, seed: u64) -> Result<TraceSet, TraceError> {
    let mut lines = content
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or(TraceError::Empty)?;
    let header_cells: Vec<&str> = header.split(',').map(str::trim).collect();
    if header_cells.len() < FIXED_COLUMNS.len()
        || header_cells[..FIXED_COLUMNS.len()] != FIXED_COLUMNS
    {
        return Err(TraceError::Header {
            expected: FIXED_COLUMNS.join(","),
            found: header.trim().to_string(),
        });
    }
    let minutes = header_cells.len() - FIXED_COLUMNS.len();
    if minutes == 0 {
        return Err(TraceError::NoMinuteColumns);
    }
    let expected_cols = FIXED_COLUMNS.len() + minutes;
    let window_secs = minutes as f64 * 60.0;

    let mut functions = Vec::new();
    let mut seen = HashSet::new();
    for (idx, row) in lines {
        let line = idx + 1; // 1-based for messages
        let cells: Vec<&str> = row.split(',').map(str::trim).collect();
        if cells.len() != expected_cols {
            return Err(TraceError::ColumnCount {
                line,
                expected: expected_cols,
                found: cells.len(),
            });
        }
        let name = cells[0].to_string();
        if !seen.insert(name.clone()) {
            return Err(TraceError::DuplicateFunction { line, name });
        }
        let number = |field_idx: usize| -> Result<f64, TraceError> {
            let value = cells[field_idx];
            match value.parse::<f64>() {
                Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
                _ => Err(TraceError::BadNumber {
                    line,
                    field: FIXED_COLUMNS[field_idx].to_string(),
                    value: value.to_string(),
                }),
            }
        };
        let avg_duration_ms = number(2)?;
        let p50_duration_ms = number(3)?;
        let p99_duration_ms = number(4)?;
        let avg_mem_mb = number(5)?;
        let p99_mem_mb = number(6)?;
        let mut counts = Vec::with_capacity(minutes);
        for (minute, cell) in cells[FIXED_COLUMNS.len()..].iter().enumerate() {
            let count: u32 = cell.parse().map_err(|_| TraceError::BadCount {
                line,
                minute,
                value: cell.to_string(),
            })?;
            counts.push(count);
        }
        functions.push(FunctionTrace {
            id: functions.len() as u32,
            class: ArrivalClass::from_trigger(cells[1]),
            mem_mb: avg_mem_mb,
            p99_mem_mb,
            duration_ms: avg_duration_ms,
            p50_duration_ms,
            p99_duration_ms,
            arrivals: reconstruct_arrivals(&counts, seed, &name),
            name,
        });
    }
    if functions.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(TraceSet {
        window_secs,
        functions,
        source: TraceSource::Loaded { seed },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb,m0,m1,m2
alpha,timer,120,95,800,192,256,1,0,2
beta,http,40,30,200,128,160,5,3,4
";

    #[test]
    fn parses_the_happy_path() {
        let trace = parse_trace_csv(GOOD, 7).unwrap();
        assert_eq!(trace.window_secs, 180.0);
        assert_eq!(trace.functions.len(), 2);
        assert_eq!(trace.source, TraceSource::Loaded { seed: 7 });
        let alpha = &trace.functions[0];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.class, ArrivalClass::Periodic);
        assert_eq!(alpha.invocations(), 3);
        assert_eq!(alpha.duration_ms, 120.0);
        assert_eq!(alpha.p99_mem_mb, 256.0);
        let beta = &trace.functions[1];
        assert_eq!(beta.class, ArrivalClass::Poisson);
        assert_eq!(beta.invocations(), 12);
        assert_eq!(trace.invocations(), 15);
        for f in &trace.functions {
            for &t in &f.arrivals {
                assert!((0.0..180.0).contains(&t));
            }
            for w in f.arrivals.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn parsing_is_deterministic_and_row_order_independent() {
        let a = parse_trace_csv(GOOD, 7).unwrap();
        let b = parse_trace_csv(GOOD, 7).unwrap();
        assert_eq!(a, b);
        // Swap the two data rows: each function's arrivals are unchanged
        // because reconstruction is keyed on (seed, name), not row index.
        let swapped = "\
function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb,m0,m1,m2
beta,http,40,30,200,128,160,5,3,4
alpha,timer,120,95,800,192,256,1,0,2
";
        let s = parse_trace_csv(swapped, 7).unwrap();
        let find = |t: &TraceSet, n: &str| {
            t.functions
                .iter()
                .find(|f| f.name == n)
                .unwrap()
                .arrivals
                .clone()
        };
        assert_eq!(find(&a, "alpha"), find(&s, "alpha"));
        assert_eq!(find(&a, "beta"), find(&s, "beta"));
    }

    #[test]
    fn different_seeds_move_arrivals() {
        let a = parse_trace_csv(GOOD, 7).unwrap();
        let b = parse_trace_csv(GOOD, 8).unwrap();
        assert_ne!(a.functions[0].arrivals, b.functions[0].arrivals);
    }

    #[test]
    fn rejects_empty_input() {
        assert_eq!(parse_trace_csv("", 0), Err(TraceError::Empty));
        assert_eq!(parse_trace_csv("\n \n", 0), Err(TraceError::Empty));
        // Header but no data rows is also empty.
        let header_only =
            "function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb,m0\n";
        assert_eq!(parse_trace_csv(header_only, 0), Err(TraceError::Empty));
    }

    #[test]
    fn rejects_bad_header() {
        let e = parse_trace_csv("name,trigger,whatever\nx,y,z\n", 0).unwrap_err();
        assert!(matches!(e, TraceError::Header { .. }), "{e}");
    }

    #[test]
    fn rejects_header_without_minutes() {
        let no_minutes =
            "function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb\nf,http,1,1,1,1,1\n";
        assert_eq!(
            parse_trace_csv(no_minutes, 0),
            Err(TraceError::NoMinuteColumns)
        );
    }

    #[test]
    fn rejects_ragged_rows() {
        let ragged = "\
function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb,m0,m1
f,http,1,1,1,1,1,0
";
        let e = parse_trace_csv(ragged, 0).unwrap_err();
        assert_eq!(
            e,
            TraceError::ColumnCount {
                line: 2,
                expected: 9,
                found: 8
            }
        );
    }

    #[test]
    fn rejects_bad_numbers_with_field_name() {
        let bad = "\
function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb,m0
f,http,1,1,1,-5,1,0
";
        let e = parse_trace_csv(bad, 0).unwrap_err();
        assert_eq!(
            e,
            TraceError::BadNumber {
                line: 2,
                field: "avg_mem_mb".into(),
                value: "-5".into()
            }
        );
        let nan = "\
function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb,m0
f,http,NaN,1,1,1,1,0
";
        assert!(matches!(
            parse_trace_csv(nan, 0).unwrap_err(),
            TraceError::BadNumber { .. }
        ));
    }

    #[test]
    fn rejects_bad_counts_with_minute_index() {
        let bad = "\
function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb,m0,m1
f,http,1,1,1,1,1,0,2.5
";
        let e = parse_trace_csv(bad, 0).unwrap_err();
        assert_eq!(
            e,
            TraceError::BadCount {
                line: 2,
                minute: 1,
                value: "2.5".into()
            }
        );
    }

    #[test]
    fn rejects_duplicate_functions() {
        let dup = "\
function,trigger,avg_duration_ms,p50_duration_ms,p99_duration_ms,avg_mem_mb,p99_mem_mb,m0
f,http,1,1,1,1,1,0
f,timer,1,1,1,1,1,0
";
        let e = parse_trace_csv(dup, 0).unwrap_err();
        assert_eq!(
            e,
            TraceError::DuplicateFunction {
                line: 3,
                name: "f".into()
            }
        );
    }

    #[test]
    fn io_error_carries_the_path() {
        let e = load_trace_csv("/nonexistent/trace.csv", 0).unwrap_err();
        match e {
            TraceError::Io(msg) => assert!(msg.contains("/nonexistent/trace.csv")),
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
