//! Event-driven trace replay: every function of a [`TraceSet`] through the
//! extended pool, across start modes and keep-alive settings, in one pass.
//!
//! This is the paper's §8.6 methodology generalized: instead of replaying a
//! single app against one matched trace function, the engine replays the
//! *whole* trace — each function becomes an [`crate::AppProfile`] (its
//! dataset memory/duration columns plus configurable image/init constants)
//! and is driven through [`crate::pool::simulate_pool_ext_traced`] once per
//! (StartMode × keep-alive) variant.
//!
//! Functions are independent, so the replay fans out over a worker pool
//! (`jobs` threads) with the same slotted-results idiom as the corpus
//! trimmer: workers pull function indices from an atomic counter and write
//! into a per-function slot, then aggregation walks the slots in function
//! order. Results are therefore **byte-identical whatever the worker
//! count** — the acceptance bar for `BENCH_replay.json`.

use super::{ArrivalClass, TraceSet};
use crate::metrics::{cdf, percentile};
use crate::platform::{AppProfile, Platform, StartMode};
use crate::pool::{simulate_pool_ext_traced, ExtPoolStats, PoolOptions};
use crate::pricing::SnapStartPricing;
use crate::providers::providers;

/// Options for [`replay_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOptions {
    /// Start modes to replay (one full pass per mode × keep-alive).
    pub modes: Vec<StartMode>,
    /// Keep-alive settings to replay, seconds.
    pub keep_alive_secs: Vec<f64>,
    /// Worker threads for the per-function fan-out (clamped to ≥ 1).
    pub jobs: usize,
    /// Per-function concurrency cap (`None` = unlimited).
    pub max_concurrency: Option<usize>,
    /// Provisioned instances per function.
    pub provisioned: usize,
    /// Deployment image size assumed for every function, MB (the dataset
    /// has no image column).
    pub image_mb: f64,
    /// Function-initialization time assumed for every function, seconds
    /// (the dataset has no init column; λ-trim's whole point is shrinking
    /// this, so the knob is explicit).
    pub init_secs: f64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            modes: vec![StartMode::Standard, StartMode::Restore],
            keep_alive_secs: vec![60.0, 900.0],
            jobs: 1,
            max_concurrency: None,
            provisioned: 0,
            image_mb: 64.0,
            init_secs: 0.5,
        }
    }
}

/// One function's replay results: per-variant pool stats plus the raw
/// per-invocation E2E samples (for percentile aggregation).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionReplay {
    /// Trace function id.
    pub id: u32,
    /// Trace function name.
    pub name: String,
    /// Arrival class.
    pub class: ArrivalClass,
    /// Invocations in the window.
    pub invocations: usize,
    /// Per-variant results, parallel to [`ReplayReport::variants`].
    pub variants: Vec<FunctionVariant>,
}

/// One function under one (mode, keep-alive) variant.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionVariant {
    /// Pool statistics.
    pub stats: ExtPoolStats,
    /// Per-invocation E2E latencies (including queueing), seconds, in
    /// arrival order.
    pub e2e_secs: Vec<f64>,
}

/// Aggregate results for one (mode, keep-alive) variant across the whole
/// trace.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantReport {
    /// Start mode of this variant.
    pub mode: StartMode,
    /// Keep-alive of this variant, seconds.
    pub keep_alive_secs: f64,
    /// Total invocations.
    pub invocations: u64,
    /// Total cold starts.
    pub cold_starts: u64,
    /// Total warm starts.
    pub warm_starts: u64,
    /// Total queued requests.
    pub queued_requests: u64,
    /// Sum of Equation-1 invocation costs, dollars (AWS pricing).
    pub invocation_cost: f64,
    /// Reserved provisioned capacity cost, dollars.
    pub provisioned_cost: f64,
    /// SnapStart snapshot cache + restore cost, dollars (Restore mode
    /// only; 0 under Standard).
    pub snapstart_cost: f64,
    /// SnapStart cost share of the total bill, in `[0, 1]`.
    pub snapstart_share: f64,
    /// p50 of per-invocation E2E latency, seconds.
    pub e2e_p50_secs: f64,
    /// p95 of per-invocation E2E latency, seconds.
    pub e2e_p95_secs: f64,
    /// p99 of per-invocation E2E latency, seconds.
    pub e2e_p99_secs: f64,
    /// Empirical CDF of per-function cold-start ratios (functions with at
    /// least one invocation): sorted `(ratio, cumulative_fraction)`.
    pub cold_ratio_cdf: Vec<(f64, f64)>,
    /// Total window bill under each provider's billing rules (invocation
    /// costs recomputed analytically from the cold/warm split; provisioned
    /// and SnapStart charges use AWS rates).
    pub provider_costs: Vec<(&'static str, f64)>,
}

impl VariantReport {
    /// Cold-start ratio across the whole trace.
    pub fn cold_ratio(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.cold_starts as f64 / self.invocations as f64
        }
    }

    /// Total dollars: invocations + provisioned capacity + SnapStart.
    pub fn total_cost(&self) -> f64 {
        self.invocation_cost + self.provisioned_cost + self.snapstart_cost
    }
}

/// The full replay result: per-function detail plus per-variant aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Window length replayed, seconds.
    pub window_secs: f64,
    /// Per-function results, in trace order.
    pub functions: Vec<FunctionReplay>,
    /// Per-variant aggregates, ordered `modes × keep_alive_secs`.
    pub variants: Vec<VariantReport>,
}

fn app_for(function: &super::FunctionTrace, options: &ReplayOptions) -> AppProfile {
    AppProfile::new(
        function.name.clone(),
        options.image_mb,
        options.init_secs,
        function.duration_ms / 1000.0,
        function.mem_mb,
    )
}

fn replay_function(
    platform: &Platform,
    trace: &TraceSet,
    function: &super::FunctionTrace,
    options: &ReplayOptions,
) -> FunctionReplay {
    let app = app_for(function, options);
    let mut variants = Vec::with_capacity(options.modes.len() * options.keep_alive_secs.len());
    for &mode in &options.modes {
        for &keep_alive_secs in &options.keep_alive_secs {
            let pool = PoolOptions {
                keep_alive_secs,
                mode,
                provisioned: options.provisioned,
                max_concurrency: options.max_concurrency,
                window_secs: trace.window_secs,
            };
            let mut e2e_secs = Vec::with_capacity(function.arrivals.len());
            let stats = simulate_pool_ext_traced(platform, &app, &function.arrivals, &pool, |e| {
                e2e_secs.push(e.finish - e.arrival)
            });
            variants.push(FunctionVariant { stats, e2e_secs });
        }
    }
    FunctionReplay {
        id: function.id,
        name: function.name.clone(),
        class: function.class,
        invocations: function.invocations(),
        variants,
    }
}

/// Replay every function of `trace` through the extended pool under every
/// (mode × keep-alive) variant of `options`, fanning the per-function work
/// out over `options.jobs` threads. Deterministic: the report is identical
/// whatever the worker count.
pub fn replay_trace(
    platform: &Platform,
    trace: &TraceSet,
    options: &ReplayOptions,
) -> ReplayReport {
    let n = trace.functions.len();
    let threads = options.jobs.max(1).min(n.max(1));
    let functions: Vec<FunctionReplay> = if threads <= 1 {
        trace
            .functions
            .iter()
            .map(|f| replay_function(platform, trace, f, options))
            .collect()
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<FunctionReplay>> = Vec::new();
        slots.resize_with(n, || None);
        let slots = std::sync::Mutex::new(slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(function) = trace.functions.get(i) else {
                        break;
                    };
                    let result = replay_function(platform, trace, function, options);
                    slots.lock().expect("replay slots poisoned")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("replay slots poisoned")
            .into_iter()
            .map(|r| r.expect("every function produced a result"))
            .collect()
    };

    // Aggregate in function order (never reduction order), so the numbers
    // are bit-identical across worker counts.
    let n_variants = options.modes.len() * options.keep_alive_secs.len();
    let snap_pricing = SnapStartPricing::default();
    let provider_models = providers();
    let mut variants = Vec::with_capacity(n_variants);
    for (v, (&mode, &keep_alive_secs)) in options
        .modes
        .iter()
        .flat_map(|m| options.keep_alive_secs.iter().map(move |k| (m, k)))
        .enumerate()
    {
        let mut report = VariantReport {
            mode,
            keep_alive_secs,
            invocations: 0,
            cold_starts: 0,
            warm_starts: 0,
            queued_requests: 0,
            invocation_cost: 0.0,
            provisioned_cost: 0.0,
            snapstart_cost: 0.0,
            snapstart_share: 0.0,
            e2e_p50_secs: 0.0,
            e2e_p95_secs: 0.0,
            e2e_p99_secs: 0.0,
            cold_ratio_cdf: Vec::new(),
            provider_costs: provider_models.iter().map(|p| (p.name, 0.0)).collect(),
        };
        let mut e2e_all = Vec::new();
        let mut cold_ratios = Vec::new();
        for (function, replay) in trace.functions.iter().zip(&functions) {
            let fv = &replay.variants[v];
            report.invocations += fv.stats.invocations();
            report.cold_starts += fv.stats.cold_starts;
            report.warm_starts += fv.stats.warm_starts;
            report.queued_requests += fv.stats.queued_requests;
            report.invocation_cost += fv.stats.invocation_cost;
            report.provisioned_cost += fv.stats.provisioned_cost;
            e2e_all.extend_from_slice(&fv.e2e_secs);
            if fv.stats.invocations() > 0 {
                cold_ratios.push(fv.stats.cold_starts as f64 / fv.stats.invocations() as f64);
            }
            let app = app_for(function, options);
            let checkpoint = &platform.config.checkpoint;
            let (snapshot_mb, cold_billable_ms) = match mode {
                StartMode::Standard => (0.0, app.cold_billable_ms()),
                StartMode::Restore => (
                    checkpoint.snapshot_mb(app.mem_mb),
                    (checkpoint.cr_init_secs(app.mem_mb) + app.exec_secs) * 1000.0,
                ),
            };
            if mode == StartMode::Restore {
                report.snapstart_cost +=
                    snap_pricing.window_cost(snapshot_mb, trace.window_secs, fv.stats.cold_starts);
            }
            // Pool dynamics (who is cold, who queues) are pricing-agnostic,
            // so each provider's bill follows analytically from the
            // cold/warm split under its own rounding and memory rules.
            for (provider, total) in provider_models.iter().zip(report.provider_costs.iter_mut()) {
                total.1 += provider.pricing.cost_for_invocations(
                    app.mem_mb,
                    cold_billable_ms,
                    fv.stats.cold_starts,
                ) + provider.pricing.cost_for_invocations(
                    app.mem_mb,
                    app.warm_billable_ms(),
                    fv.stats.warm_starts,
                );
            }
        }
        report.e2e_p50_secs = percentile(&e2e_all, 50.0);
        report.e2e_p95_secs = percentile(&e2e_all, 95.0);
        report.e2e_p99_secs = percentile(&e2e_all, 99.0);
        report.cold_ratio_cdf = cdf(&cold_ratios);
        let total = report.total_cost();
        report.snapstart_share = if total > 0.0 {
            report.snapstart_cost / total
        } else {
            0.0
        };
        variants.push(report);
    }
    ReplayReport {
        window_secs: trace.window_secs,
        functions,
        variants,
    }
}

fn mode_name(mode: StartMode) -> &'static str {
    match mode {
        StartMode::Standard => "standard",
        StartMode::Restore => "restore",
    }
}

/// Render the deterministic metrics block of a replay as a JSON string —
/// shared by `experiments -- replay` (which embeds it in
/// `BENCH_replay.json`) and the tier-1 golden-fixture test (which asserts
/// byte-identity across runs and worker counts). Only replay-derived
/// numbers appear here; harness-variable fields (throughput, host) live
/// outside this block.
pub fn render_metrics_json(report: &ReplayReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"window_secs\": {},\n  \"functions\": {},\n  \"invocations\": {},\n",
        report.window_secs,
        report.functions.len(),
        report
            .functions
            .iter()
            .map(|f| f.invocations)
            .sum::<usize>()
    ));
    out.push_str("  \"variants\": [\n");
    for (i, v) in report.variants.iter().enumerate() {
        let deciles: Vec<String> = (1..=10)
            .map(|d| {
                let ratios: Vec<f64> = v.cold_ratio_cdf.iter().map(|&(r, _)| r).collect();
                format!("{}", percentile(&ratios, d as f64 * 10.0))
            })
            .collect();
        let provider_costs: Vec<String> = v
            .provider_costs
            .iter()
            .map(|(name, cost)| format!("\"{name}\": {cost}"))
            .collect();
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"keep_alive_secs\": {}, \"invocations\": {}, \
             \"cold_starts\": {}, \"warm_starts\": {}, \"queued_requests\": {}, \
             \"cold_ratio\": {}, \"invocation_cost_usd\": {}, \"provisioned_cost_usd\": {}, \
             \"snapstart_cost_usd\": {}, \"snapstart_share\": {}, \"total_cost_usd\": {}, \
             \"e2e_p50_s\": {}, \"e2e_p95_s\": {}, \"e2e_p99_s\": {}, \
             \"cold_ratio_deciles\": [{}], \"provider_cost_usd\": {{{}}}}}{}\n",
            mode_name(v.mode),
            v.keep_alive_secs,
            v.invocations,
            v.cold_starts,
            v.warm_starts,
            v.queued_requests,
            v.cold_ratio(),
            v.invocation_cost,
            v.provisioned_cost,
            v.snapstart_cost,
            v.snapstart_share,
            v.total_cost(),
            v.e2e_p50_secs,
            v.e2e_p95_secs,
            v.e2e_p99_secs,
            deciles.join(", "),
            provider_costs.join(", "),
            if i + 1 < report.variants.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::super::synthetic::{generate_trace, TraceConfig};
    use super::*;

    fn small_trace() -> TraceSet {
        generate_trace(&TraceConfig {
            functions: 24,
            window_secs: 4.0 * 3600.0,
            seed: 99,
            diurnal: None,
        })
    }

    #[test]
    fn replay_covers_every_function_and_variant() {
        let trace = small_trace();
        let report = replay_trace(&Platform::default(), &trace, &ReplayOptions::default());
        assert_eq!(report.functions.len(), 24);
        assert_eq!(report.variants.len(), 4); // 2 modes × 2 keep-alives
        for f in &report.functions {
            assert_eq!(f.variants.len(), 4);
            for v in &f.variants {
                assert_eq!(v.stats.invocations() as usize, f.invocations);
                assert_eq!(v.e2e_secs.len(), f.invocations);
            }
        }
        let total: u64 = report.variants[0].invocations;
        assert_eq!(total as usize, trace.invocations());
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let trace = small_trace();
        let platform = Platform::default();
        let base = ReplayOptions::default();
        let seq = replay_trace(
            &platform,
            &trace,
            &ReplayOptions {
                jobs: 1,
                ..base.clone()
            },
        );
        let par = replay_trace(
            &platform,
            &trace,
            &ReplayOptions {
                jobs: 8,
                ..base.clone()
            },
        );
        assert_eq!(seq, par, "replay must be deterministic across --jobs");
        assert_eq!(
            render_metrics_json(&seq),
            render_metrics_json(&par),
            "rendered metrics must be byte-identical across --jobs"
        );
    }

    #[test]
    fn longer_keep_alive_reduces_cold_ratio() {
        let trace = small_trace();
        let report = replay_trace(
            &Platform::default(),
            &trace,
            &ReplayOptions {
                modes: vec![StartMode::Standard],
                keep_alive_secs: vec![60.0, 3600.0],
                ..ReplayOptions::default()
            },
        );
        let short = &report.variants[0];
        let long = &report.variants[1];
        assert!(short.cold_ratio() > long.cold_ratio());
    }

    #[test]
    fn snapstart_costs_appear_only_in_restore_mode() {
        let trace = small_trace();
        let report = replay_trace(&Platform::default(), &trace, &ReplayOptions::default());
        for v in &report.variants {
            match v.mode {
                StartMode::Standard => {
                    assert_eq!(v.snapstart_cost, 0.0);
                    assert_eq!(v.snapstart_share, 0.0);
                }
                StartMode::Restore => {
                    assert!(v.snapstart_cost > 0.0);
                    assert!(v.snapstart_share > 0.0 && v.snapstart_share < 1.0);
                }
            }
            assert!(v.total_cost() > 0.0);
            assert_eq!(v.provider_costs.len(), 3);
            for &(_, cost) in &v.provider_costs {
                assert!(cost > 0.0);
            }
            // Coarser rounding never bills less than AWS's 1 ms rounding.
            let aws = v.provider_costs[0].1;
            assert!(v.provider_costs.iter().all(|&(_, c)| c >= aws * 0.999));
        }
    }

    #[test]
    fn percentiles_are_ordered_and_cdf_well_formed() {
        let trace = small_trace();
        let report = replay_trace(&Platform::default(), &trace, &ReplayOptions::default());
        for v in &report.variants {
            assert!(v.e2e_p50_secs <= v.e2e_p95_secs);
            assert!(v.e2e_p95_secs <= v.e2e_p99_secs);
            assert!(!v.cold_ratio_cdf.is_empty());
            assert_eq!(v.cold_ratio_cdf.last().unwrap().1, 1.0);
            for w in v.cold_ratio_cdf.windows(2) {
                assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn rendered_metrics_are_valid_shape() {
        let trace = small_trace();
        let report = replay_trace(&Platform::default(), &trace, &ReplayOptions::default());
        let json = render_metrics_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"mode\"").count(), 4);
        assert!(json.contains("\"AWS Lambda\""));
        assert!(json.contains("\"cold_ratio_deciles\""));
        // Balanced braces/brackets — cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_trace_replays_to_zeroes() {
        let trace = TraceSet {
            window_secs: 60.0,
            functions: vec![],
            source: super::super::TraceSource::Synthetic { seed: 0 },
        };
        let report = replay_trace(&Platform::default(), &trace, &ReplayOptions::default());
        assert!(report.functions.is_empty());
        for v in &report.variants {
            assert_eq!(v.invocations, 0);
            assert_eq!(v.total_cost(), 0.0);
            assert_eq!(v.cold_ratio(), 0.0);
        }
    }
}
