//! Diurnal + day-of-week rate modulation.
//!
//! Shahrad et al. (ATC'20, §3) show strong daily periodicity in the Azure
//! trace: platform-wide invocation rates swing by roughly 2× over a day and
//! dip on weekends. The synthetic generator reproduces that shape by
//! *thinning* demand-driven arrivals (Poisson, bursty, rare classes) with a
//! time-of-day acceptance probability; timer-driven functions fire on their
//! schedule regardless of human activity and are left unmodulated.

use super::TraceError;

/// Seconds per hour/day — window timestamps start at hour 0 of day 0
/// (a Monday, so days 5 and 6 are the weekend).
const HOUR_SECS: f64 = 3600.0;
const DAY_SECS: f64 = 24.0 * 3600.0;

/// A diurnal + weekly rate shape. `rate_multiplier` maps a timestamp to an
/// acceptance probability in `(0, 1]`, normalized so the peak hour of a
/// weekday keeps every arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalProfile {
    /// Day-cycle swing in `[0, 1)`: 0 = flat, 0.6 ≈ the trace's ~2×
    /// peak-to-trough ratio ((1+a)/(1−a) = 4 at a = 0.6).
    pub amplitude: f64,
    /// Hour of day `[0, 24)` at which the rate peaks.
    pub peak_hour: f64,
    /// Multiplier in `(0, 1]` applied on days 5 and 6 (the weekend).
    pub weekend_factor: f64,
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        DiurnalProfile {
            amplitude: 0.6,
            peak_hour: 14.0,
            weekend_factor: 0.7,
        }
    }
}

impl DiurnalProfile {
    /// Validate parameter ranges.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidDiurnal`] naming the offending field.
    pub fn validate(&self) -> Result<(), TraceError> {
        if !(0.0..1.0).contains(&self.amplitude) {
            return Err(TraceError::InvalidDiurnal {
                field: "amplitude",
                value: self.amplitude,
            });
        }
        if !(0.0..24.0).contains(&self.peak_hour) {
            return Err(TraceError::InvalidDiurnal {
                field: "peak_hour",
                value: self.peak_hour,
            });
        }
        if !(self.weekend_factor > 0.0 && self.weekend_factor <= 1.0) {
            return Err(TraceError::InvalidDiurnal {
                field: "weekend_factor",
                value: self.weekend_factor,
            });
        }
        Ok(())
    }

    /// Acceptance probability at `t_secs` from window start, in `(0, 1]`:
    /// a cosine day cycle peaking at `peak_hour`, scaled by
    /// `weekend_factor` on days 5 and 6, normalized to 1 at a weekday peak.
    pub fn rate_multiplier(&self, t_secs: f64) -> f64 {
        let hour = (t_secs / HOUR_SECS).rem_euclid(24.0);
        let day = (t_secs / DAY_SECS).div_euclid(1.0).rem_euclid(7.0) as u32;
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let day_shape = (1.0 + self.amplitude * phase.cos()) / (1.0 + self.amplitude);
        let week = if day >= 5 { self.weekend_factor } else { 1.0 };
        (day_shape * week).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_hour_keeps_everything_on_weekdays() {
        let p = DiurnalProfile::default();
        let peak = p.rate_multiplier(p.peak_hour * HOUR_SECS);
        assert!((peak - 1.0).abs() < 1e-12, "weekday peak must be 1.0");
    }

    #[test]
    fn trough_is_peak_to_trough_ratio_below_peak() {
        let p = DiurnalProfile::default();
        let trough_hour = (p.peak_hour + 12.0) % 24.0;
        let trough = p.rate_multiplier(trough_hour * HOUR_SECS);
        let expected = (1.0 - p.amplitude) / (1.0 + p.amplitude);
        assert!((trough - expected).abs() < 1e-12);
        assert!(trough < 1.0);
    }

    #[test]
    fn weekend_days_are_scaled_down() {
        let p = DiurnalProfile::default();
        let weekday = p.rate_multiplier(p.peak_hour * HOUR_SECS); // day 0
        let weekend = p.rate_multiplier(5.0 * DAY_SECS + p.peak_hour * HOUR_SECS);
        assert!((weekend - weekday * p.weekend_factor).abs() < 1e-12);
        // Day 7 wraps back to a weekday.
        let next_week = p.rate_multiplier(7.0 * DAY_SECS + p.peak_hour * HOUR_SECS);
        assert!((next_week - weekday).abs() < 1e-12);
    }

    #[test]
    fn multiplier_stays_in_unit_interval() {
        let p = DiurnalProfile {
            amplitude: 0.95,
            peak_hour: 3.0,
            weekend_factor: 0.2,
        };
        for i in 0..(14 * 24) {
            let m = p.rate_multiplier(i as f64 * HOUR_SECS + 17.0);
            assert!(m > 0.0 && m <= 1.0, "hour {i}: {m}");
        }
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(DiurnalProfile::default().validate().is_ok());
        let bad = |amplitude, peak_hour, weekend_factor| DiurnalProfile {
            amplitude,
            peak_hour,
            weekend_factor,
        };
        assert!(bad(1.0, 14.0, 0.7).validate().is_err());
        assert!(bad(-0.1, 14.0, 0.7).validate().is_err());
        assert!(bad(0.5, 24.0, 0.7).validate().is_err());
        assert!(bad(0.5, 14.0, 0.0).validate().is_err());
        assert!(bad(0.5, 14.0, 1.5).validate().is_err());
    }
}
