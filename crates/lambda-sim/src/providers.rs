//! Cross-provider cost comparison (§2.1's provider survey made executable):
//! the same application profile priced under AWS-, GCP- and Azure-style
//! billing rules, exposing how rounding granularity and memory policies
//! change which optimizations matter.

use crate::platform::AppProfile;
use crate::pricing::PricingModel;

/// A named provider pricing profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Provider {
    /// Display name.
    pub name: &'static str,
    /// The pricing rules.
    pub pricing: PricingModel,
}

/// The three provider models the paper discusses (§2.1).
pub fn providers() -> Vec<Provider> {
    vec![
        Provider {
            name: "AWS Lambda",
            pricing: PricingModel::aws(),
        },
        Provider {
            name: "GCP Cloud Run fns",
            pricing: PricingModel::gcp(),
        },
        Provider {
            name: "Azure Functions",
            pricing: PricingModel::azure(),
        },
    ]
}

/// Cost of one cold start of `app` under each provider, in dollars.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderQuote {
    /// Provider name.
    pub provider: &'static str,
    /// Configured memory after the provider's policy (MB).
    pub configured_mb: u64,
    /// Billed duration after the provider's rounding (ms).
    pub billed_ms: f64,
    /// Cold-start invocation cost ($).
    pub cold_cost: f64,
    /// Warm invocation cost ($).
    pub warm_cost: f64,
}

/// Quote a profile across all providers.
pub fn quote_all(app: &AppProfile) -> Vec<ProviderQuote> {
    providers()
        .into_iter()
        .map(|p| ProviderQuote {
            provider: p.name,
            configured_mb: p.pricing.configured_memory_mb(app.mem_mb),
            billed_ms: p.pricing.billed_duration_ms(app.cold_billable_ms()),
            cold_cost: p
                .pricing
                .invocation_cost(app.mem_mb, app.cold_billable_ms()),
            warm_cost: p
                .pricing
                .invocation_cost(app.mem_mb, app.warm_billable_ms()),
        })
        .collect()
}

/// How much of the cold-start bill each provider's *rounding* adds on top
/// of the raw duration (fraction ≥ 0). Coarse rounding (Azure's 1 s) makes
/// trimming sub-second amounts of initialization worthless — the bill only
/// moves when a whole billing quantum is crossed.
pub fn rounding_overhead(app: &AppProfile) -> Vec<(&'static str, f64)> {
    providers()
        .into_iter()
        .map(|p| {
            let raw = app.cold_billable_ms();
            let billed = p.pricing.billed_duration_ms(raw);
            let overhead = if raw <= 0.0 {
                0.0
            } else {
                (billed - raw) / raw
            };
            (p.name, overhead)
        })
        .collect()
}

/// The smallest initialization-time saving (ms) that is guaranteed to lower
/// the bill under the given pricing — the billing quantum. Savings smaller
/// than this may be invisible (§2.1, footnote on billing granularity).
pub fn min_visible_saving_ms(pricing: &PricingModel) -> f64 {
    pricing.billed_duration_ms(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> AppProfile {
        AppProfile::new("demo", 100.0, 0.45, 0.12, 700.0)
    }

    #[test]
    fn three_providers_quoted() {
        let quotes = quote_all(&app());
        assert_eq!(quotes.len(), 3);
        // Azure's 1 s rounding can make a 570 ms cold and a 120 ms warm
        // start bill identically — hence >=, not >.
        assert!(quotes.iter().all(|q| q.cold_cost >= q.warm_cost));
        assert!(quotes.iter().all(|q| q.configured_mb >= 700));
    }

    #[test]
    fn coarser_rounding_never_bills_less() {
        let quotes = quote_all(&app());
        let aws = quotes.iter().find(|q| q.provider == "AWS Lambda").unwrap();
        let gcp = quotes
            .iter()
            .find(|q| q.provider == "GCP Cloud Run fns")
            .unwrap();
        let azure = quotes
            .iter()
            .find(|q| q.provider == "Azure Functions")
            .unwrap();
        assert!(gcp.billed_ms >= aws.billed_ms);
        assert!(azure.billed_ms >= gcp.billed_ms);
    }

    #[test]
    fn rounding_overhead_ordering() {
        let overheads = rounding_overhead(&app());
        let get = |n: &str| overheads.iter().find(|(p, _)| *p == n).unwrap().1;
        assert!(get("AWS Lambda") <= get("GCP Cloud Run fns") + 1e-12);
        assert!(get("GCP Cloud Run fns") <= get("Azure Functions") + 1e-12);
        assert!(overheads.iter().all(|(_, o)| *o >= 0.0));
    }

    #[test]
    fn billing_quantum_matches_rounding() {
        assert_eq!(min_visible_saving_ms(&PricingModel::aws()), 1.0);
        assert_eq!(min_visible_saving_ms(&PricingModel::gcp()), 100.0);
        assert_eq!(min_visible_saving_ms(&PricingModel::azure()), 1000.0);
    }

    #[test]
    fn sub_quantum_trim_is_invisible_on_azure() {
        // Trimming 1.9 s -> 1.1 s saves 800 ms: AWS bills less, but Azure
        // rounds both up to the same 2 s quantum — the saving is invisible.
        let azure = PricingModel::azure();
        assert_eq!(
            azure.invocation_cost(700.0, 1900.0),
            azure.invocation_cost(700.0, 1100.0)
        );
        let aws = PricingModel::aws();
        assert!(aws.invocation_cost(700.0, 1900.0) > aws.invocation_cost(700.0, 1100.0));
    }
}
