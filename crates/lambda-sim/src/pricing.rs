//! Serverless pricing models (§2.1 of the paper).
//!
//! Implements Equation (1): `C = ConfiguredMemory × BilledDuration × UnitPrice`
//! with AWS Lambda's billing granularity (1 ms), memory range (128 MB–10 GB),
//! and the published unit price of $0.0000162109 per GB-second, plus the GCP
//! (100 ms) and Azure (1 s) rounding variants and AWS SnapStart's
//! restore + cache pricing (§8.6).

/// The unit price used throughout the paper: $ per GB per second.
pub const AWS_UNIT_PRICE_PER_GB_S: f64 = 0.000_016_210_9;

/// AWS SnapStart cache price: $ per GB-second of stored snapshot.
/// (Derived from the published $0.0000015046 per GB-s for cached snapshots.)
pub const AWS_SNAPSTART_CACHE_PRICE_PER_GB_S: f64 = 0.000_001_504_6;

/// AWS SnapStart restoration price: $ per GB restored.
pub const AWS_SNAPSTART_RESTORE_PRICE_PER_GB: f64 = 0.000_183_5;

/// Billing-duration rounding granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rounding {
    /// AWS Lambda: round up to 1 ms.
    PerMillisecond,
    /// GCP Cloud Run functions: round up to 100 ms.
    Per100Milliseconds,
    /// Azure Functions: round up to 1 s.
    PerSecond,
}

impl Rounding {
    /// Round a duration in milliseconds up to the billing granularity.
    pub fn round_ms(self, duration_ms: f64) -> f64 {
        let granularity = match self {
            Rounding::PerMillisecond => 1.0,
            Rounding::Per100Milliseconds => 100.0,
            Rounding::PerSecond => 1000.0,
        };
        if duration_ms <= 0.0 {
            return 0.0;
        }
        (duration_ms / granularity).ceil() * granularity
    }
}

/// A serverless platform pricing model.
#[derive(Debug, Clone, PartialEq)]
pub struct PricingModel {
    /// $ per GB of configured memory per second of billed duration.
    pub unit_price_per_gb_s: f64,
    /// Duration rounding.
    pub rounding: Rounding,
    /// Minimum configurable memory in MB (AWS: 128).
    pub min_memory_mb: u64,
    /// Maximum configurable memory in MB (AWS: 10240).
    pub max_memory_mb: u64,
    /// Memory configuration step in MB (AWS: 1 MB steps today).
    pub memory_step_mb: u64,
    /// Headroom multiplier applied to the measured peak footprint before
    /// choosing the configured memory (the paper uses the measured maximum
    /// footprint as a lower bound; production deployments add headroom).
    pub headroom: f64,
}

impl Default for PricingModel {
    fn default() -> Self {
        Self::aws()
    }
}

impl PricingModel {
    /// AWS Lambda pricing as used in the paper's evaluation.
    pub fn aws() -> Self {
        PricingModel {
            unit_price_per_gb_s: AWS_UNIT_PRICE_PER_GB_S,
            rounding: Rounding::PerMillisecond,
            min_memory_mb: 128,
            max_memory_mb: 10_240,
            memory_step_mb: 1,
            headroom: 1.0,
        }
    }

    /// GCP-style pricing (100 ms rounding).
    pub fn gcp() -> Self {
        PricingModel {
            rounding: Rounding::Per100Milliseconds,
            ..Self::aws()
        }
    }

    /// Azure-style pricing (1 s rounding, fixed 1.5 GB default budget).
    pub fn azure() -> Self {
        PricingModel {
            rounding: Rounding::PerSecond,
            min_memory_mb: 128,
            max_memory_mb: 1_536,
            ..Self::aws()
        }
    }

    /// Choose the configured memory (in MB) for a measured peak footprint:
    /// at least the footprint (× headroom), clamped to the platform range and
    /// rounded up to the configuration step. This models §2.2.2: "the optimal
    /// configuration should be above the application's peak memory footprint",
    /// with the 128 MB minimum billing threshold.
    pub fn configured_memory_mb(&self, peak_footprint_mb: f64) -> u64 {
        let wanted = (peak_footprint_mb * self.headroom).ceil().max(0.0) as u64;
        let stepped = wanted.div_ceil(self.memory_step_mb) * self.memory_step_mb;
        stepped.clamp(self.min_memory_mb, self.max_memory_mb)
    }

    /// Billed duration in milliseconds after rounding.
    pub fn billed_duration_ms(&self, duration_ms: f64) -> f64 {
        self.rounding.round_ms(duration_ms)
    }

    /// Cost in dollars of a single invocation: Equation (1).
    pub fn invocation_cost(&self, peak_footprint_mb: f64, billable_duration_ms: f64) -> f64 {
        let mem_gb = self.configured_memory_mb(peak_footprint_mb) as f64 / 1024.0;
        let billed_s = self.billed_duration_ms(billable_duration_ms) / 1000.0;
        mem_gb * billed_s * self.unit_price_per_gb_s
    }

    /// Cost of `n` identical invocations (the paper reports cost per 100 K).
    pub fn cost_for_invocations(
        &self,
        peak_footprint_mb: f64,
        billable_duration_ms: f64,
        n: u64,
    ) -> f64 {
        self.invocation_cost(peak_footprint_mb, billable_duration_ms) * n as f64
    }
}

/// AWS SnapStart pricing: per-restore and per-GB-second cache charges.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapStartPricing {
    /// $ per GB of snapshot restored (charged on every cold start).
    pub restore_price_per_gb: f64,
    /// $ per GB-second of snapshot kept in the cache.
    pub cache_price_per_gb_s: f64,
}

impl Default for SnapStartPricing {
    fn default() -> Self {
        SnapStartPricing {
            restore_price_per_gb: AWS_SNAPSTART_RESTORE_PRICE_PER_GB,
            cache_price_per_gb_s: AWS_SNAPSTART_CACHE_PRICE_PER_GB_S,
        }
    }
}

impl SnapStartPricing {
    /// Cost of restoring a snapshot of `snapshot_mb` once.
    pub fn restore_cost(&self, snapshot_mb: f64) -> f64 {
        (snapshot_mb / 1024.0) * self.restore_price_per_gb
    }

    /// Cost of caching a snapshot of `snapshot_mb` for `seconds`.
    pub fn cache_cost(&self, snapshot_mb: f64, seconds: f64) -> f64 {
        (snapshot_mb / 1024.0) * seconds * self.cache_price_per_gb_s
    }

    /// Total SnapStart overhead for a window: caching for the whole window
    /// plus one restore per cold start.
    pub fn window_cost(&self, snapshot_mb: f64, window_seconds: f64, cold_starts: u64) -> f64 {
        self.cache_cost(snapshot_mb, window_seconds)
            + self.restore_cost(snapshot_mb) * cold_starts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_rounds_up() {
        assert_eq!(Rounding::PerMillisecond.round_ms(12.3), 13.0);
        assert_eq!(Rounding::Per100Milliseconds.round_ms(12.3), 100.0);
        assert_eq!(Rounding::PerSecond.round_ms(1200.0), 2000.0);
        assert_eq!(Rounding::PerMillisecond.round_ms(0.0), 0.0);
    }

    #[test]
    fn exact_boundaries_do_not_round_up() {
        assert_eq!(Rounding::PerMillisecond.round_ms(13.0), 13.0);
        assert_eq!(Rounding::PerSecond.round_ms(2000.0), 2000.0);
    }

    #[test]
    fn configured_memory_has_minimum_threshold() {
        let p = PricingModel::aws();
        assert_eq!(p.configured_memory_mb(10.0), 128, "128 MB minimum billing");
        assert_eq!(p.configured_memory_mb(0.0), 128);
        assert_eq!(p.configured_memory_mb(300.0), 300);
        assert_eq!(p.configured_memory_mb(20_000.0), 10_240, "capped at 10 GB");
    }

    #[test]
    fn headroom_scales_footprint() {
        let p = PricingModel {
            headroom: 1.2,
            ..PricingModel::aws()
        };
        assert_eq!(p.configured_memory_mb(1000.0), 1200);
    }

    #[test]
    fn equation_one_matches_hand_computation() {
        let p = PricingModel::aws();
        // 1 GB, 1 s → exactly the unit price.
        let c = p.invocation_cost(1024.0, 1000.0);
        assert!((c - AWS_UNIT_PRICE_PER_GB_S).abs() < 1e-12);
    }

    #[test]
    fn cost_is_monotone_in_duration_and_memory() {
        let p = PricingModel::aws();
        assert!(p.invocation_cost(512.0, 2000.0) > p.invocation_cost(512.0, 1000.0));
        assert!(p.invocation_cost(2048.0, 1000.0) > p.invocation_cost(512.0, 1000.0));
    }

    #[test]
    fn small_footprints_bill_identically_below_threshold() {
        let p = PricingModel::aws();
        // Both below 128 MB → identical cost (hides trim benefit, §8.1).
        assert_eq!(
            p.invocation_cost(50.0, 500.0),
            p.invocation_cost(120.0, 500.0)
        );
    }

    #[test]
    fn cost_for_100k_invocations_scales_linearly() {
        let p = PricingModel::aws();
        let one = p.invocation_cost(799.0, 10_120.0);
        let hundred_k = p.cost_for_invocations(799.0, 10_120.0, 100_000);
        assert!((hundred_k - one * 1e5).abs() < 1e-9);
    }

    #[test]
    fn snapstart_window_cost_components() {
        let s = SnapStartPricing::default();
        let cost = s.window_cost(1024.0, 3600.0, 10);
        let expected = 1.0 * 3600.0 * AWS_SNAPSTART_CACHE_PRICE_PER_GB_S
            + 10.0 * AWS_SNAPSTART_RESTORE_PRICE_PER_GB;
        assert!((cost - expected).abs() < 1e-12);
    }

    #[test]
    fn gcp_and_azure_round_coarser() {
        let aws = PricingModel::aws();
        let gcp = PricingModel::gcp();
        let azure = PricingModel::azure();
        assert!(gcp.billed_duration_ms(150.0) > aws.billed_duration_ms(150.0));
        assert!(azure.billed_duration_ms(150.0) > gcp.billed_duration_ms(150.0));
    }
}
