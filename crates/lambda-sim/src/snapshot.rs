//! Checkpoint/restore (C/R) model — the CRIU prototype and AWS SnapStart of
//! §8.6 and Table 3.
//!
//! A checkpoint captures the post-initialization state of a function
//! instance. Its size is modeled as a base (process tree, interpreter state)
//! plus a fraction of the application's post-init memory image — which is why
//! λ-trim shrinks checkpoints (Table 3, ~11% average): trimming attributes
//! shrinks the memory image the checkpoint has to include.

/// Parameters of the checkpoint/restore cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointModel {
    /// Fixed restore overhead in seconds: CRIU recreates the process tree by
    /// forking and replaying `/proc` state (§8.6 measures ≈ 0.1 s).
    pub restore_overhead_secs: f64,
    /// Sequential read bandwidth for loading checkpoint pages, MB/s.
    /// Loading pages is "much faster than file I/O and command execution by
    /// the Python interpreter", hence the large value.
    pub restore_bandwidth_mb_s: f64,
    /// Fixed checkpoint size floor in MB (runtime, process metadata).
    pub snapshot_base_mb: f64,
    /// Fraction of the app's post-init memory footprint captured in the
    /// checkpoint image (pages actually dirtied during initialization).
    pub snapshot_mem_fraction: f64,
    /// Time to *take* a checkpoint, seconds per MB (off the critical path,
    /// reported for completeness).
    pub checkpoint_secs_per_mb: f64,
}

impl Default for CheckpointModel {
    fn default() -> Self {
        CheckpointModel {
            restore_overhead_secs: 0.1,
            restore_bandwidth_mb_s: 1_500.0,
            snapshot_base_mb: 8.0,
            snapshot_mem_fraction: 0.30,
            checkpoint_secs_per_mb: 0.004,
        }
    }
}

impl CheckpointModel {
    /// Checkpoint image size for an app with the given post-init footprint.
    pub fn snapshot_mb(&self, mem_mb: f64) -> f64 {
        self.snapshot_base_mb + self.snapshot_mem_fraction * mem_mb.max(0.0)
    }

    /// Time to restore a checkpoint of `snapshot_mb`, in seconds.
    pub fn restore_secs(&self, snapshot_mb: f64) -> f64 {
        self.restore_overhead_secs + snapshot_mb.max(0.0) / self.restore_bandwidth_mb_s
    }

    /// Time to take a checkpoint of `snapshot_mb`, in seconds.
    pub fn checkpoint_secs(&self, snapshot_mb: f64) -> f64 {
        self.checkpoint_secs_per_mb * snapshot_mb.max(0.0)
    }

    /// The initialization latency a cold start pays under C/R: restore time
    /// for this app's snapshot.
    pub fn cr_init_secs(&self, mem_mb: f64) -> f64 {
        self.restore_secs(self.snapshot_mb(mem_mb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_size_grows_with_memory() {
        let m = CheckpointModel::default();
        assert!(m.snapshot_mb(800.0) > m.snapshot_mb(100.0));
        assert!(m.snapshot_mb(0.0) >= m.snapshot_base_mb);
    }

    #[test]
    fn restore_has_fixed_overhead() {
        let m = CheckpointModel::default();
        let tiny = m.restore_secs(0.0);
        assert!((tiny - m.restore_overhead_secs).abs() < 1e-12);
        assert!(m.restore_secs(1000.0) > tiny);
    }

    #[test]
    fn trimming_memory_shrinks_checkpoint() {
        let m = CheckpointModel::default();
        let original = m.snapshot_mb(300.0);
        let trimmed = m.snapshot_mb(250.0);
        let reduction = 1.0 - trimmed / original;
        assert!(reduction > 0.0 && reduction < 0.5);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let m = CheckpointModel::default();
        assert_eq!(m.snapshot_mb(-5.0), m.snapshot_base_mb);
        assert_eq!(m.restore_secs(-5.0), m.restore_overhead_secs);
        assert_eq!(m.checkpoint_secs(-1.0), 0.0);
    }

    #[test]
    fn cr_init_composes_size_and_restore() {
        let m = CheckpointModel::default();
        let direct = m.restore_secs(m.snapshot_mb(500.0));
        assert_eq!(m.cr_init_secs(500.0), direct);
    }
}
