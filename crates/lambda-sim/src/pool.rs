//! Extended instance-pool simulation: provisioned concurrency, account
//! concurrency limits, and request queueing.
//!
//! The basic keep-alive pool lives in [`crate::platform::simulate_pool`];
//! this module adds the platform features the paper's related work cites
//! (§3.1: provisioned concurrency, pre-warming) so their cost/latency
//! trade-offs can be compared against debloating:
//!
//! * **provisioned concurrency** — `n` instances are initialized ahead of
//!   time and never expire; requests landing on them are always warm, but
//!   the reserved capacity is billed for the whole window whether used or
//!   not (AWS prices provisioned GB-seconds at a discounted rate);
//! * **concurrency limit** — at most `max_concurrency` instances may run
//!   at once; excess arrivals queue and their queueing delay is added to
//!   E2E latency.

use crate::platform::{AppProfile, Platform, StartKind, StartMode};

/// AWS provisioned-concurrency price: $ per GB-second of reserved capacity
/// (lower than the on-demand duration price).
pub const AWS_PROVISIONED_PRICE_PER_GB_S: f64 = 0.000_004_166_7;

/// Options for [`simulate_pool_ext`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolOptions {
    /// Idle instance lifetime in seconds.
    pub keep_alive_secs: f64,
    /// How cold starts initialize.
    pub mode: StartMode,
    /// Number of pre-initialized, never-expiring instances.
    pub provisioned: usize,
    /// Maximum concurrently running instances (`None` = unlimited).
    pub max_concurrency: Option<usize>,
    /// Window length in seconds (for provisioned-capacity billing).
    pub window_secs: f64,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            keep_alive_secs: 900.0,
            mode: StartMode::Standard,
            provisioned: 0,
            max_concurrency: None,
            window_secs: 24.0 * 3600.0,
        }
    }
}

/// Results of an extended pool simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExtPoolStats {
    /// Cold starts (full initialization on the critical path).
    pub cold_starts: u64,
    /// Warm starts (reused keep-alive or provisioned instances).
    pub warm_starts: u64,
    /// Requests that had to queue for a concurrency slot.
    pub queued_requests: u64,
    /// Total queueing delay in seconds.
    pub total_queue_secs: f64,
    /// Sum of invocation costs (Equation 1) in dollars.
    pub invocation_cost: f64,
    /// Reserved-capacity cost for provisioned instances in dollars.
    pub provisioned_cost: f64,
    /// Sum of E2E latencies (including queueing) in seconds.
    pub total_e2e_secs: f64,
}

impl ExtPoolStats {
    /// Total invocations.
    pub fn invocations(&self) -> u64 {
        self.cold_starts + self.warm_starts
    }

    /// Total dollars: invocations + reserved capacity.
    pub fn total_cost(&self) -> f64 {
        self.invocation_cost + self.provisioned_cost
    }

    /// Mean E2E latency in seconds.
    pub fn mean_e2e_secs(&self) -> f64 {
        let n = self.invocations();
        if n == 0 {
            0.0
        } else {
            self.total_e2e_secs / n as f64
        }
    }
}

/// One dispatched request, reported by [`simulate_pool_ext_traced`]'s event
/// sink. Lets callers reconstruct the full execution timeline — e.g. per-
/// invocation E2E latency percentiles, or an instantaneous-concurrency sweep
/// in a property test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolEvent {
    /// When the request arrived (seconds from window start).
    pub arrival: f64,
    /// When it actually started running (= `arrival` unless it queued).
    pub start: f64,
    /// When it finished (start + invocation E2E).
    pub finish: f64,
    /// Cold or warm.
    pub kind: StartKind,
}

/// Simulate an arrival process through the extended pool. `arrivals` must
/// be sorted ascending (seconds from window start).
pub fn simulate_pool_ext(
    platform: &Platform,
    app: &AppProfile,
    arrivals: &[f64],
    options: &PoolOptions,
) -> ExtPoolStats {
    simulate_pool_ext_traced(platform, app, arrivals, options, |_| {})
}

/// [`simulate_pool_ext`] with an event sink: `on_event` is called once per
/// arrival, in arrival order, with the dispatched request's timeline.
pub fn simulate_pool_ext_traced(
    platform: &Platform,
    app: &AppProfile,
    arrivals: &[f64],
    options: &PoolOptions,
    mut on_event: impl FnMut(PoolEvent),
) -> ExtPoolStats {
    #[derive(Clone, Copy)]
    struct Instance {
        free_at: f64,
        expires_at: f64,
        provisioned: bool,
    }
    fn reap(instances: &mut Vec<Instance>, now: f64) {
        instances.retain(|i| i.provisioned || !(i.free_at <= now && i.expires_at < now));
    }
    let mut instances: Vec<Instance> = (0..options.provisioned)
        .map(|_| Instance {
            free_at: 0.0,
            expires_at: f64::INFINITY,
            provisioned: true,
        })
        .collect();
    let mut stats = ExtPoolStats::default();
    for &arrival in arrivals {
        // Reap on-demand instances that expired before this arrival.
        let mut now = arrival;
        reap(&mut instances, now);

        // Concurrency limiting. With `busy >= cap` instances running, the
        // request must wait until the pool is down to `cap - 1` running
        // instances — i.e. until the `(busy - cap + 1)`-th earliest
        // `free_at`, not the earliest (waiting only for the earliest lets a
        // burst of b > cap simultaneous arrivals run b instances at once).
        if let Some(cap) = options.max_concurrency {
            let cap = cap.max(1);
            let mut busy: Vec<f64> = instances
                .iter()
                .filter(|i| i.free_at > now)
                .map(|i| i.free_at)
                .collect();
            if busy.len() >= cap {
                busy.sort_by(f64::total_cmp);
                now = busy[busy.len() - cap];
                stats.queued_requests += 1;
                stats.total_queue_secs += now - arrival;
                // The wait moved the clock: instances whose keep-alive ran
                // out inside `(arrival, now)` are gone by dispatch time and
                // must not be counted live (or reused) below.
                reap(&mut instances, now);
            }
        }

        // Prefer provisioned instances, then the most-recently-used warm one.
        let idle = instances
            .iter_mut()
            .filter(|i| i.free_at <= now && i.expires_at >= now)
            .max_by(|a, b| {
                (a.provisioned, a.free_at)
                    .partial_cmp(&(b.provisioned, b.free_at))
                    .expect("no NaN in pool times")
            });
        let (inv, start_kind) = match idle {
            Some(slot) => {
                let inv = platform.warm_invocation(app);
                let finish = now + inv.e2e_secs();
                slot.free_at = finish;
                if !slot.provisioned {
                    slot.expires_at = finish + options.keep_alive_secs;
                }
                (inv, StartKind::Warm)
            }
            None => {
                let inv = platform.cold_invocation(app, options.mode);
                let finish = now + inv.e2e_secs();
                instances.push(Instance {
                    free_at: finish,
                    expires_at: finish + options.keep_alive_secs,
                    provisioned: false,
                });
                (inv, StartKind::Cold)
            }
        };
        match start_kind {
            StartKind::Cold => stats.cold_starts += 1,
            StartKind::Warm => stats.warm_starts += 1,
        }
        stats.invocation_cost += inv.cost;
        stats.total_e2e_secs += inv.e2e_secs() + (now - arrival);
        on_event(PoolEvent {
            arrival,
            start: now,
            finish: now + inv.e2e_secs(),
            kind: start_kind,
        });
    }
    // Reserved capacity is billed for the whole window regardless of use.
    let mem_gb = platform.config.pricing.configured_memory_mb(app.mem_mb) as f64 / 1024.0;
    stats.provisioned_cost =
        options.provisioned as f64 * mem_gb * options.window_secs * AWS_PROVISIONED_PRICE_PER_GB_S;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> AppProfile {
        AppProfile::new("demo", 100.0, 1.0, 0.2, 512.0)
    }

    #[test]
    fn provisioned_instances_eliminate_cold_starts() {
        let platform = Platform::default();
        let arrivals: Vec<f64> = (0..10).map(|i| i as f64 * 100.0).collect();
        let none = simulate_pool_ext(&platform, &app(), &arrivals, &PoolOptions::default());
        let provisioned = simulate_pool_ext(
            &platform,
            &app(),
            &arrivals,
            &PoolOptions {
                provisioned: 1,
                ..PoolOptions::default()
            },
        );
        assert!(none.cold_starts >= 1);
        assert_eq!(
            provisioned.cold_starts, 0,
            "pre-warmed instance absorbs all"
        );
        assert!(provisioned.provisioned_cost > 0.0);
        assert!(provisioned.mean_e2e_secs() < none.mean_e2e_secs());
    }

    #[test]
    fn provisioned_capacity_costs_even_when_idle() {
        let platform = Platform::default();
        let stats = simulate_pool_ext(
            &platform,
            &app(),
            &[],
            &PoolOptions {
                provisioned: 3,
                ..PoolOptions::default()
            },
        );
        assert_eq!(stats.invocations(), 0);
        assert!(
            stats.provisioned_cost > 0.0,
            "idle capacity is still billed"
        );
    }

    #[test]
    fn concurrency_limit_queues_bursts() {
        let platform = Platform::default();
        // Ten simultaneous arrivals, capacity two.
        let arrivals = vec![0.0; 10];
        let limited = simulate_pool_ext(
            &platform,
            &app(),
            &arrivals,
            &PoolOptions {
                max_concurrency: Some(2),
                ..PoolOptions::default()
            },
        );
        // Exactly the first two arrivals run immediately (cold); the other
        // eight each wait for a slot and reuse the instance that freed it
        // (warm) — capacity 2 means exactly 2 instances ever exist.
        assert_eq!(limited.cold_starts, 2);
        assert_eq!(limited.warm_starts, 8);
        assert_eq!(limited.queued_requests, 8);
        assert!(limited.total_queue_secs > 0.0);
        let unlimited = simulate_pool_ext(&platform, &app(), &arrivals, &PoolOptions::default());
        assert_eq!(unlimited.queued_requests, 0);
        assert!(limited.mean_e2e_secs() > unlimited.mean_e2e_secs());
    }

    /// Max simultaneously running requests over the event timeline.
    fn peak_concurrency(events: &[PoolEvent]) -> usize {
        let mut deltas: Vec<(f64, i64)> = Vec::with_capacity(events.len() * 2);
        for e in events {
            deltas.push((e.start, 1));
            deltas.push((e.finish, -1));
        }
        // At a tie, finishes release their slot before starts claim one.
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut cur, mut peak) = (0i64, 0i64);
        for (_, d) in deltas {
            cur += d;
            peak = peak.max(cur);
        }
        peak as usize
    }

    #[test]
    fn burst_larger_than_cap_never_exceeds_cap() {
        // Regression: waiting only for the *earliest* free_at let a burst of
        // b > cap simultaneous arrivals all dispatch at the same instant.
        let platform = Platform::default();
        let arrivals = vec![0.0; 10];
        for cap in [1, 2, 3] {
            let mut events = Vec::new();
            simulate_pool_ext_traced(
                &platform,
                &app(),
                &arrivals,
                &PoolOptions {
                    max_concurrency: Some(cap),
                    ..PoolOptions::default()
                },
                |e| events.push(e),
            );
            assert_eq!(events.len(), 10);
            assert!(
                peak_concurrency(&events) <= cap,
                "cap {cap} violated: peak {}",
                peak_concurrency(&events)
            );
        }
    }

    #[test]
    fn zero_cap_is_treated_as_one() {
        let platform = Platform::default();
        let stats = simulate_pool_ext(
            &platform,
            &app(),
            &[0.0, 0.0, 0.0],
            &PoolOptions {
                max_concurrency: Some(0),
                ..PoolOptions::default()
            },
        );
        assert_eq!(stats.invocations(), 3, "requests still run, serialized");
        assert_eq!(stats.queued_requests, 2);
    }

    #[test]
    fn queued_request_dispatches_at_slot_free_time() {
        // Reaping and dispatch now both happen at the (possibly waited)
        // dispatch time: the queued request starts exactly when the slot
        // holder frees, and reuses it warm — even at keep_alive 0, where
        // the holder expires the same instant it frees (expiry is
        // exclusive: `expires_at < now` reaps, equality does not).
        let platform = Platform::default();
        let slow = AppProfile::new("slow", 10.0, 0.1, 100.0, 128.0);
        let mut events = Vec::new();
        let stats = simulate_pool_ext_traced(
            &platform,
            &slow,
            &[0.0, 1.0],
            &PoolOptions {
                keep_alive_secs: 0.0,
                max_concurrency: Some(1),
                ..PoolOptions::default()
            },
            |e| events.push(e),
        );
        assert_eq!(stats.cold_starts, 1);
        assert_eq!(stats.warm_starts, 1);
        assert_eq!(stats.queued_requests, 1);
        assert_eq!(events[1].arrival, 1.0);
        assert!(
            (events[1].start - events[0].finish).abs() < 1e-12,
            "queued request starts exactly when the slot frees"
        );
        // A third arrival after the pool drains and keep-alive (0 s)
        // elapses must cold-start: the expired instance is not revived.
        let late = simulate_pool_ext(
            &platform,
            &slow,
            &[0.0, 1.0, 500.0],
            &PoolOptions {
                keep_alive_secs: 0.0,
                max_concurrency: Some(1),
                ..PoolOptions::default()
            },
        );
        assert_eq!(late.cold_starts, 2);
        assert_eq!(late.warm_starts, 1);
    }

    #[test]
    fn matches_basic_pool_when_features_disabled() {
        let platform = Platform::default();
        let arrivals: Vec<f64> = (0..20).map(|i| i as f64 * 37.0).collect();
        let basic = crate::platform::simulate_pool(
            &platform,
            &app(),
            &arrivals,
            900.0,
            StartMode::Standard,
        );
        let ext = simulate_pool_ext(&platform, &app(), &arrivals, &PoolOptions::default());
        assert_eq!(basic.cold_starts, ext.cold_starts);
        assert_eq!(basic.warm_starts, ext.warm_starts);
        assert!((basic.total_cost - ext.invocation_cost).abs() < 1e-12);
    }

    #[test]
    fn trimming_and_provisioning_are_complementary() {
        // Debloating reduces the per-cold-start bill; provisioning reduces
        // cold-start *count* — both improve E2E but provisioning costs
        // standing money.
        let platform = Platform::default();
        let arrivals: Vec<f64> = (0..50).map(|i| i as f64 * 2400.0).collect();
        let original = app();
        let trimmed = AppProfile::new("demo-trim", 100.0, 0.3, 0.2, 380.0);
        let base = simulate_pool_ext(
            &platform,
            &original,
            &arrivals,
            &PoolOptions {
                keep_alive_secs: 900.0,
                ..PoolOptions::default()
            },
        );
        let trim_only = simulate_pool_ext(
            &platform,
            &trimmed,
            &arrivals,
            &PoolOptions {
                keep_alive_secs: 900.0,
                ..PoolOptions::default()
            },
        );
        assert!(trim_only.total_cost() < base.total_cost());
        assert!(trim_only.total_e2e_secs < base.total_e2e_secs);
    }
}
