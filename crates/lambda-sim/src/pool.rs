//! Extended instance-pool simulation: provisioned concurrency, account
//! concurrency limits, and request queueing.
//!
//! The basic keep-alive pool lives in [`crate::platform::simulate_pool`];
//! this module adds the platform features the paper's related work cites
//! (§3.1: provisioned concurrency, pre-warming) so their cost/latency
//! trade-offs can be compared against debloating:
//!
//! * **provisioned concurrency** — `n` instances are initialized ahead of
//!   time and never expire; requests landing on them are always warm, but
//!   the reserved capacity is billed for the whole window whether used or
//!   not (AWS prices provisioned GB-seconds at a discounted rate);
//! * **concurrency limit** — at most `max_concurrency` instances may run
//!   at once; excess arrivals queue and their queueing delay is added to
//!   E2E latency.
//!
//! # Engines
//!
//! Two implementations share one contract:
//!
//! * the **event-driven engine** (the default behind every public entry
//!   point) keeps busy instances in a min-heap on `free_at` and idle
//!   instances in ordered multisets, so each arrival costs `O(log n)`
//!   amortized instead of the naive `O(n)` scan — the difference between
//!   linear and quadratic behavior under bursts;
//! * the **naive reference engine** ([`simulate_pool_ext_naive_traced`])
//!   retains the original `Vec<Instance>` + `retain`/`filter`/`sort_by`
//!   per-arrival loop. It exists purely as the differential-testing oracle:
//!   both engines must produce byte-identical [`ExtPoolStats`] and
//!   [`PoolEvent`] streams on every input.
//!
//! The equivalence rests on a structural invariant of the pool: a
//! non-provisioned instance always satisfies
//! `expires_at == free_at + keep_alive_secs` (set identically on creation
//! and on every warm reuse), and a provisioned instance never expires. An
//! instance's observable state is therefore exactly `(free_at,
//! provisioned)`, which is what the event-driven engine's ordered
//! containers key on; instances that tie on that pair are interchangeable,
//! so heap/multiset tie-breaking cannot diverge from the naive engine's
//! iteration-order tie-breaking.
//!
//! # Expiry boundary
//!
//! Keep-alive expiry is **exclusive**: an idle instance is reaped when
//! `expires_at < now` and still usable when `expires_at == now`. With
//! `keep_alive_secs == 0` a queued request dispatching at the exact instant
//! its slot frees therefore still reuses it warm. Both engines pin this
//! boundary (see `expiry_boundary_is_exclusive_on_both_engines`).

use crate::platform::{AppProfile, Platform, StartKind, StartMode};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// AWS provisioned-concurrency price: $ per GB-second of reserved capacity
/// (lower than the on-demand duration price).
pub const AWS_PROVISIONED_PRICE_PER_GB_S: f64 = 0.000_004_166_7;

/// Options for [`simulate_pool_ext`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolOptions {
    /// Idle instance lifetime in seconds.
    pub keep_alive_secs: f64,
    /// How cold starts initialize.
    pub mode: StartMode,
    /// Number of pre-initialized, never-expiring instances.
    pub provisioned: usize,
    /// Maximum concurrently running instances (`None` = unlimited).
    pub max_concurrency: Option<usize>,
    /// Window length in seconds (for provisioned-capacity billing).
    pub window_secs: f64,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            keep_alive_secs: 900.0,
            mode: StartMode::Standard,
            provisioned: 0,
            max_concurrency: None,
            window_secs: 24.0 * 3600.0,
        }
    }
}

/// Results of an extended pool simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExtPoolStats {
    /// Cold starts (full initialization on the critical path).
    pub cold_starts: u64,
    /// Warm starts (reused keep-alive or provisioned instances).
    pub warm_starts: u64,
    /// Requests that had to queue for a concurrency slot.
    pub queued_requests: u64,
    /// Total queueing delay in seconds.
    pub total_queue_secs: f64,
    /// Sum of invocation costs (Equation 1) in dollars.
    pub invocation_cost: f64,
    /// Reserved-capacity cost for provisioned instances in dollars.
    pub provisioned_cost: f64,
    /// Sum of E2E latencies (including queueing) in seconds.
    pub total_e2e_secs: f64,
}

impl ExtPoolStats {
    /// Total invocations.
    pub fn invocations(&self) -> u64 {
        self.cold_starts + self.warm_starts
    }

    /// Total dollars: invocations + reserved capacity.
    pub fn total_cost(&self) -> f64 {
        self.invocation_cost + self.provisioned_cost
    }

    /// Mean E2E latency in seconds.
    pub fn mean_e2e_secs(&self) -> f64 {
        let n = self.invocations();
        if n == 0 {
            0.0
        } else {
            self.total_e2e_secs / n as f64
        }
    }
}

/// One dispatched request, reported by [`simulate_pool_ext_traced`]'s event
/// sink. Lets callers reconstruct the full execution timeline — e.g. per-
/// invocation E2E latency percentiles, or an instantaneous-concurrency sweep
/// in a property test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolEvent {
    /// When the request arrived (seconds from window start).
    pub arrival: f64,
    /// When it actually started running (= `arrival` unless it queued).
    pub start: f64,
    /// When it finished (start + invocation E2E).
    pub finish: f64,
    /// Cold or warm.
    pub kind: StartKind,
}

/// Typed errors from the extended pool simulator's input validation.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// The arrival sequence is not sorted ascending: out-of-order arrivals
    /// silently corrupt cold/warm accounting (the pool clock only moves
    /// forward), so they are rejected up front.
    UnsortedArrivals {
        /// 0-based index of the offending arrival.
        index: usize,
        /// The preceding arrival timestamp.
        previous: f64,
        /// The out-of-order timestamp found at `index`.
        found: f64,
    },
    /// An arrival timestamp is NaN, which has no place on a timeline.
    NanArrival {
        /// 0-based index of the NaN arrival.
        index: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::UnsortedArrivals {
                index,
                previous,
                found,
            } => write!(
                f,
                "arrivals must be sorted ascending: arrivals[{index}] = {found} \
                 after {previous}"
            ),
            PoolError::NanArrival { index } => {
                write!(f, "arrivals[{index}] is NaN")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Simulate an arrival process through the extended pool. `arrivals` must
/// be sorted ascending (seconds from window start); this is enforced.
///
/// # Panics
///
/// Panics if `arrivals` is unsorted or contains NaN — use
/// [`try_simulate_pool_ext`] to handle malformed input gracefully.
pub fn simulate_pool_ext(
    platform: &Platform,
    app: &AppProfile,
    arrivals: &[f64],
    options: &PoolOptions,
) -> ExtPoolStats {
    simulate_pool_ext_traced(platform, app, arrivals, options, |_| {})
}

/// [`simulate_pool_ext`] with an event sink: `on_event` is called once per
/// arrival, in arrival order, with the dispatched request's timeline.
///
/// # Panics
///
/// Panics if `arrivals` is unsorted or contains NaN — use
/// [`try_simulate_pool_ext_traced`] to handle malformed input gracefully.
pub fn simulate_pool_ext_traced(
    platform: &Platform,
    app: &AppProfile,
    arrivals: &[f64],
    options: &PoolOptions,
    on_event: impl FnMut(PoolEvent),
) -> ExtPoolStats {
    try_simulate_pool_ext_traced(platform, app, arrivals, options, on_event)
        .unwrap_or_else(|e| panic!("simulate_pool_ext: {e}"))
}

/// [`simulate_pool_ext`] returning a typed error instead of panicking on
/// malformed arrival sequences.
///
/// # Errors
///
/// [`PoolError::UnsortedArrivals`] or [`PoolError::NanArrival`].
pub fn try_simulate_pool_ext(
    platform: &Platform,
    app: &AppProfile,
    arrivals: &[f64],
    options: &PoolOptions,
) -> Result<ExtPoolStats, PoolError> {
    try_simulate_pool_ext_traced(platform, app, arrivals, options, |_| {})
}

/// [`simulate_pool_ext_traced`] returning a typed error instead of
/// panicking on malformed arrival sequences.
///
/// # Errors
///
/// [`PoolError::UnsortedArrivals`] or [`PoolError::NanArrival`].
pub fn try_simulate_pool_ext_traced(
    platform: &Platform,
    app: &AppProfile,
    arrivals: &[f64],
    options: &PoolOptions,
    on_event: impl FnMut(PoolEvent),
) -> Result<ExtPoolStats, PoolError> {
    simulate_pool_ext_stream_traced(platform, app, arrivals.iter().copied(), options, on_event)
}

/// Total-order key for pool timestamps (`f64::total_cmp`); the simulator
/// rejects NaN at the boundary, and all derived times are NaN-free, so the
/// total order coincides with the numeric order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Ordered multiset of idle-instance `free_at` times.
type IdleSet = BTreeMap<Time, usize>;

fn idle_insert(set: &mut IdleSet, t: f64) {
    *set.entry(Time(t)).or_insert(0) += 1;
}

/// Remove and return the greatest `free_at` (most recently used).
fn idle_take_max(set: &mut IdleSet) -> Option<f64> {
    let (&key, count) = set.iter_mut().next_back()?;
    *count -= 1;
    if *count == 0 {
        set.remove(&key);
    }
    Some(key.0)
}

/// Event-driven core: streams arrivals through the pool without ever
/// materializing them, validating ordering on the fly.
///
/// Busy instances live in a min-heap keyed on `free_at` (tagged
/// provisioned/on-demand); idle instances live in two ordered multisets of
/// `free_at` (provisioned instances never expire; on-demand instances
/// expire at `free_at + keep_alive_secs`, so the key determines expiry
/// too). Each arrival settles freed instances out of the heap, reaps
/// expired idle instances from the cheap end of the multiset, and — under
/// a concurrency cap — pops exactly `busy - cap + 1` heap entries to find
/// the queued request's dispatch time, the same `(busy - cap + 1)`-th
/// earliest `free_at` the naive engine finds by sorting.
///
/// # Errors
///
/// [`PoolError::UnsortedArrivals`] or [`PoolError::NanArrival`].
pub fn simulate_pool_ext_stream_traced(
    platform: &Platform,
    app: &AppProfile,
    arrivals: impl IntoIterator<Item = f64>,
    options: &PoolOptions,
    mut on_event: impl FnMut(PoolEvent),
) -> Result<ExtPoolStats, PoolError> {
    let keep_alive = options.keep_alive_secs;
    // Busy = dispatched and not yet freed: min-heap on (free_at, provisioned).
    let mut busy: BinaryHeap<Reverse<(Time, bool)>> = BinaryHeap::new();
    let mut idle_demand: IdleSet = IdleSet::new();
    let mut idle_prov: IdleSet = IdleSet::new();
    for _ in 0..options.provisioned {
        idle_insert(&mut idle_prov, 0.0);
    }

    // Move every busy instance freed by `now` into its idle set.
    let settle = |busy: &mut BinaryHeap<Reverse<(Time, bool)>>,
                  idle_demand: &mut IdleSet,
                  idle_prov: &mut IdleSet,
                  now: f64| {
        while let Some(&Reverse((t, provisioned))) = busy.peek() {
            if t.0 > now {
                break;
            }
            busy.pop();
            idle_insert(if provisioned { idle_prov } else { idle_demand }, t.0);
        }
    };
    // Reap idle on-demand instances whose keep-alive ran out strictly
    // before `now` (exclusive expiry; see the module docs). Every entry
    // already satisfies `free_at <= now`, and the reap predicate is
    // monotone in `free_at`, so popping from the low end suffices. The
    // negated comparison is deliberate: it is the exact complement of the
    // naive engine's `expires_at < now` reap test, NaN semantics included.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    let reap = |idle_demand: &mut IdleSet, now: f64| {
        while let Some((&key, count)) = idle_demand.iter_mut().next() {
            if !(key.0 + keep_alive < now) {
                break;
            }
            *count -= 1;
            if *count == 0 {
                idle_demand.remove(&key);
            }
        }
    };

    let mut stats = ExtPoolStats::default();
    let mut prev = f64::NEG_INFINITY;
    for (index, arrival) in arrivals.into_iter().enumerate() {
        if arrival.is_nan() {
            return Err(PoolError::NanArrival { index });
        }
        if arrival < prev {
            return Err(PoolError::UnsortedArrivals {
                index,
                previous: prev,
                found: arrival,
            });
        }
        prev = arrival;
        let mut now = arrival;
        settle(&mut busy, &mut idle_demand, &mut idle_prov, now);
        reap(&mut idle_demand, now);

        // Concurrency limiting. With `busy >= cap` instances running, the
        // request must wait until the pool is down to `cap - 1` running
        // instances — i.e. until the `(busy - cap + 1)`-th earliest
        // `free_at`, not the earliest (waiting only for the earliest lets a
        // burst of b > cap simultaneous arrivals run b instances at once).
        //
        // Popped entries free *after* `arrival` but by the waited dispatch
        // time; they must NOT settle into the idle sets (the next arrival
        // in a burst may be earlier than the waited clock, at which point
        // they count as busy again). They become warm candidates for this
        // dispatch only, and the unchosen ones go straight back into the
        // busy heap to settle at whatever later arrival overtakes them.
        let mut waiters: Vec<(f64, bool)> = Vec::new();
        if let Some(cap) = options.max_concurrency {
            let cap = cap.max(1);
            if busy.len() >= cap {
                for _ in 0..(busy.len() - cap + 1) {
                    let Reverse((t, provisioned)) =
                        busy.pop().expect("pop count bounded by busy.len()");
                    now = t.0;
                    waiters.push((t.0, provisioned));
                }
                // Entries tied at the new clock freed by dispatch time too.
                while let Some(&Reverse((t, _))) = busy.peek() {
                    if t.0 > now {
                        break;
                    }
                    let Reverse((t, provisioned)) = busy.pop().expect("peeked");
                    waiters.push((t.0, provisioned));
                }
                stats.queued_requests += 1;
                stats.total_queue_secs += now - arrival;
                // The wait moved the clock: idle instances (and just-freed
                // waiters) whose keep-alive ran out inside `(arrival, now)`
                // are gone by dispatch time.
                reap(&mut idle_demand, now);
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                waiters.retain(|&(f, provisioned)| provisioned || !(f + keep_alive < now));
            }
        }

        // Prefer provisioned instances, then the most-recently-used warm
        // one. After settling and reaping, every idle entry and every
        // surviving waiter is dispatchable (`free_at <= now`, not expired),
        // so this is a max over (provisioned, free_at) across both.
        enum WarmSource {
            IdleProv,
            IdleDemand,
            Waiter(usize),
        }
        let mut best: Option<(bool, Time, WarmSource)> = None;
        let mut consider = |prov: bool, t: Time, src: WarmSource| {
            if best
                .as_ref()
                .is_none_or(|&(bp, bt, _)| (prov, t) > (bp, bt))
            {
                best = Some((prov, t, src));
            }
        };
        if let Some(&t) = idle_prov.keys().next_back() {
            consider(true, t, WarmSource::IdleProv);
        }
        if let Some(&t) = idle_demand.keys().next_back() {
            consider(false, t, WarmSource::IdleDemand);
        }
        for (i, &(f, provisioned)) in waiters.iter().enumerate() {
            consider(provisioned, Time(f), WarmSource::Waiter(i));
        }
        let warm_slot = best.map(|(provisioned, _, src)| {
            match src {
                WarmSource::IdleProv => {
                    idle_take_max(&mut idle_prov);
                }
                WarmSource::IdleDemand => {
                    idle_take_max(&mut idle_demand);
                }
                WarmSource::Waiter(i) => {
                    waiters.swap_remove(i);
                }
            }
            provisioned
        });
        for (f, provisioned) in waiters {
            busy.push(Reverse((Time(f), provisioned)));
        }
        let (inv, start_kind, provisioned) = match warm_slot {
            Some(provisioned) => (platform.warm_invocation(app), StartKind::Warm, provisioned),
            None => (
                platform.cold_invocation(app, options.mode),
                StartKind::Cold,
                false,
            ),
        };
        let finish = now + inv.e2e_secs();
        busy.push(Reverse((Time(finish), provisioned)));
        match start_kind {
            StartKind::Cold => stats.cold_starts += 1,
            StartKind::Warm => stats.warm_starts += 1,
        }
        stats.invocation_cost += inv.cost;
        stats.total_e2e_secs += inv.e2e_secs() + (now - arrival);
        on_event(PoolEvent {
            arrival,
            start: now,
            finish,
            kind: start_kind,
        });
    }
    // Reserved capacity is billed for the whole window regardless of use.
    let mem_gb = platform.config.pricing.configured_memory_mb(app.mem_mb) as f64 / 1024.0;
    stats.provisioned_cost =
        options.provisioned as f64 * mem_gb * options.window_secs * AWS_PROVISIONED_PRICE_PER_GB_S;
    Ok(stats)
}

/// The retained naive engine: the original `Vec<Instance>` implementation
/// with per-arrival `retain`/`filter`/`sort_by` scans — `O(instances)` per
/// request, quadratic under bursts. Kept as the differential-testing
/// oracle for the event-driven engine (and for engine-speedup benchmarks);
/// production paths all use [`simulate_pool_ext_traced`].
///
/// # Panics
///
/// Panics if `arrivals` is unsorted or contains NaN, matching the default
/// engine's contract.
pub fn simulate_pool_ext_naive_traced(
    platform: &Platform,
    app: &AppProfile,
    arrivals: &[f64],
    options: &PoolOptions,
    mut on_event: impl FnMut(PoolEvent),
) -> ExtPoolStats {
    validate_arrivals(arrivals).unwrap_or_else(|e| panic!("simulate_pool_ext_naive: {e}"));
    #[derive(Clone, Copy)]
    struct Instance {
        free_at: f64,
        expires_at: f64,
        provisioned: bool,
    }
    fn reap(instances: &mut Vec<Instance>, now: f64) {
        instances.retain(|i| i.provisioned || !(i.free_at <= now && i.expires_at < now));
    }
    let mut instances: Vec<Instance> = (0..options.provisioned)
        .map(|_| Instance {
            free_at: 0.0,
            expires_at: f64::INFINITY,
            provisioned: true,
        })
        .collect();
    let mut stats = ExtPoolStats::default();
    for &arrival in arrivals {
        // Reap on-demand instances that expired before this arrival.
        let mut now = arrival;
        reap(&mut instances, now);

        if let Some(cap) = options.max_concurrency {
            let cap = cap.max(1);
            let mut busy: Vec<f64> = instances
                .iter()
                .filter(|i| i.free_at > now)
                .map(|i| i.free_at)
                .collect();
            if busy.len() >= cap {
                busy.sort_by(f64::total_cmp);
                now = busy[busy.len() - cap];
                stats.queued_requests += 1;
                stats.total_queue_secs += now - arrival;
                reap(&mut instances, now);
            }
        }

        // Prefer provisioned instances, then the most-recently-used warm one.
        let idle = instances
            .iter_mut()
            .filter(|i| i.free_at <= now && i.expires_at >= now)
            .max_by(|a, b| {
                (a.provisioned, a.free_at)
                    .partial_cmp(&(b.provisioned, b.free_at))
                    .expect("no NaN in pool times")
            });
        let (inv, start_kind) = match idle {
            Some(slot) => {
                let inv = platform.warm_invocation(app);
                let finish = now + inv.e2e_secs();
                slot.free_at = finish;
                if !slot.provisioned {
                    slot.expires_at = finish + options.keep_alive_secs;
                }
                (inv, StartKind::Warm)
            }
            None => {
                let inv = platform.cold_invocation(app, options.mode);
                let finish = now + inv.e2e_secs();
                instances.push(Instance {
                    free_at: finish,
                    expires_at: finish + options.keep_alive_secs,
                    provisioned: false,
                });
                (inv, StartKind::Cold)
            }
        };
        match start_kind {
            StartKind::Cold => stats.cold_starts += 1,
            StartKind::Warm => stats.warm_starts += 1,
        }
        stats.invocation_cost += inv.cost;
        stats.total_e2e_secs += inv.e2e_secs() + (now - arrival);
        on_event(PoolEvent {
            arrival,
            start: now,
            finish: now + inv.e2e_secs(),
            kind: start_kind,
        });
    }
    // Reserved capacity is billed for the whole window regardless of use.
    let mem_gb = platform.config.pricing.configured_memory_mb(app.mem_mb) as f64 / 1024.0;
    stats.provisioned_cost =
        options.provisioned as f64 * mem_gb * options.window_secs * AWS_PROVISIONED_PRICE_PER_GB_S;
    stats
}

/// Check that an arrival slice satisfies the pool contract: sorted
/// ascending, no NaN.
///
/// # Errors
///
/// [`PoolError::UnsortedArrivals`] or [`PoolError::NanArrival`].
pub fn validate_arrivals(arrivals: &[f64]) -> Result<(), PoolError> {
    let mut prev = f64::NEG_INFINITY;
    for (index, &t) in arrivals.iter().enumerate() {
        if t.is_nan() {
            return Err(PoolError::NanArrival { index });
        }
        if t < prev {
            return Err(PoolError::UnsortedArrivals {
                index,
                previous: prev,
                found: t,
            });
        }
        prev = t;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trim_rng::Rng;

    fn app() -> AppProfile {
        AppProfile::new("demo", 100.0, 1.0, 0.2, 512.0)
    }

    #[test]
    fn provisioned_instances_eliminate_cold_starts() {
        let platform = Platform::default();
        let arrivals: Vec<f64> = (0..10).map(|i| i as f64 * 100.0).collect();
        let none = simulate_pool_ext(&platform, &app(), &arrivals, &PoolOptions::default());
        let provisioned = simulate_pool_ext(
            &platform,
            &app(),
            &arrivals,
            &PoolOptions {
                provisioned: 1,
                ..PoolOptions::default()
            },
        );
        assert!(none.cold_starts >= 1);
        assert_eq!(
            provisioned.cold_starts, 0,
            "pre-warmed instance absorbs all"
        );
        assert!(provisioned.provisioned_cost > 0.0);
        assert!(provisioned.mean_e2e_secs() < none.mean_e2e_secs());
    }

    #[test]
    fn provisioned_capacity_costs_even_when_idle() {
        let platform = Platform::default();
        let stats = simulate_pool_ext(
            &platform,
            &app(),
            &[],
            &PoolOptions {
                provisioned: 3,
                ..PoolOptions::default()
            },
        );
        assert_eq!(stats.invocations(), 0);
        assert!(
            stats.provisioned_cost > 0.0,
            "idle capacity is still billed"
        );
    }

    #[test]
    fn concurrency_limit_queues_bursts() {
        let platform = Platform::default();
        // Ten simultaneous arrivals, capacity two.
        let arrivals = vec![0.0; 10];
        let limited = simulate_pool_ext(
            &platform,
            &app(),
            &arrivals,
            &PoolOptions {
                max_concurrency: Some(2),
                ..PoolOptions::default()
            },
        );
        // Exactly the first two arrivals run immediately (cold); the other
        // eight each wait for a slot and reuse the instance that freed it
        // (warm) — capacity 2 means exactly 2 instances ever exist.
        assert_eq!(limited.cold_starts, 2);
        assert_eq!(limited.warm_starts, 8);
        assert_eq!(limited.queued_requests, 8);
        assert!(limited.total_queue_secs > 0.0);
        let unlimited = simulate_pool_ext(&platform, &app(), &arrivals, &PoolOptions::default());
        assert_eq!(unlimited.queued_requests, 0);
        assert!(limited.mean_e2e_secs() > unlimited.mean_e2e_secs());
    }

    /// Max simultaneously running requests over the event timeline.
    fn peak_concurrency(events: &[PoolEvent]) -> usize {
        let mut deltas: Vec<(f64, i64)> = Vec::with_capacity(events.len() * 2);
        for e in events {
            deltas.push((e.start, 1));
            deltas.push((e.finish, -1));
        }
        // At a tie, finishes release their slot before starts claim one.
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut cur, mut peak) = (0i64, 0i64);
        for (_, d) in deltas {
            cur += d;
            peak = peak.max(cur);
        }
        peak as usize
    }

    #[test]
    fn burst_larger_than_cap_never_exceeds_cap() {
        // Regression: waiting only for the *earliest* free_at let a burst of
        // b > cap simultaneous arrivals all dispatch at the same instant.
        let platform = Platform::default();
        let arrivals = vec![0.0; 10];
        for cap in [1, 2, 3] {
            let mut events = Vec::new();
            simulate_pool_ext_traced(
                &platform,
                &app(),
                &arrivals,
                &PoolOptions {
                    max_concurrency: Some(cap),
                    ..PoolOptions::default()
                },
                |e| events.push(e),
            );
            assert_eq!(events.len(), 10);
            assert!(
                peak_concurrency(&events) <= cap,
                "cap {cap} violated: peak {}",
                peak_concurrency(&events)
            );
        }
    }

    #[test]
    fn zero_cap_is_treated_as_one() {
        let platform = Platform::default();
        let stats = simulate_pool_ext(
            &platform,
            &app(),
            &[0.0, 0.0, 0.0],
            &PoolOptions {
                max_concurrency: Some(0),
                ..PoolOptions::default()
            },
        );
        assert_eq!(stats.invocations(), 3, "requests still run, serialized");
        assert_eq!(stats.queued_requests, 2);
    }

    #[test]
    fn queued_request_dispatches_at_slot_free_time() {
        // Reaping and dispatch now both happen at the (possibly waited)
        // dispatch time: the queued request starts exactly when the slot
        // holder frees, and reuses it warm — even at keep_alive 0, where
        // the holder expires the same instant it frees (expiry is
        // exclusive: `expires_at < now` reaps, equality does not).
        let platform = Platform::default();
        let slow = AppProfile::new("slow", 10.0, 0.1, 100.0, 128.0);
        let mut events = Vec::new();
        let stats = simulate_pool_ext_traced(
            &platform,
            &slow,
            &[0.0, 1.0],
            &PoolOptions {
                keep_alive_secs: 0.0,
                max_concurrency: Some(1),
                ..PoolOptions::default()
            },
            |e| events.push(e),
        );
        assert_eq!(stats.cold_starts, 1);
        assert_eq!(stats.warm_starts, 1);
        assert_eq!(stats.queued_requests, 1);
        assert_eq!(events[1].arrival, 1.0);
        assert!(
            (events[1].start - events[0].finish).abs() < 1e-12,
            "queued request starts exactly when the slot frees"
        );
        // A third arrival after the pool drains and keep-alive (0 s)
        // elapses must cold-start: the expired instance is not revived.
        let late = simulate_pool_ext(
            &platform,
            &slow,
            &[0.0, 1.0, 500.0],
            &PoolOptions {
                keep_alive_secs: 0.0,
                max_concurrency: Some(1),
                ..PoolOptions::default()
            },
        );
        assert_eq!(late.cold_starts, 2);
        assert_eq!(late.warm_starts, 1);
    }

    #[test]
    fn expiry_boundary_is_exclusive_on_both_engines() {
        // The pinned boundary: an idle instance whose keep-alive runs out at
        // *exactly* the arrival instant (`expires_at == now`) is still warm;
        // one that expired any earlier (`expires_at < now`) is reaped. With
        // keep_alive 0, an instance freeing at time `f` expires at `f` too,
        // so an arrival at exactly `f` reuses it and an arrival at
        // `f + ε` cold-starts.
        let platform = Platform::default();
        let a = app();
        let cold_e2e = platform.cold_invocation(&a, StartMode::Standard).e2e_secs();
        let options = PoolOptions {
            keep_alive_secs: 0.0,
            ..PoolOptions::default()
        };
        for (arrivals, expect_warm) in [
            (vec![0.0, cold_e2e], 1u64),        // expires_at == now: kept
            (vec![0.0, cold_e2e + 1e-9], 0u64), // expires_at < now: reaped
        ] {
            let event = simulate_pool_ext(&platform, &a, &arrivals, &options);
            let naive = simulate_pool_ext_naive_traced(&platform, &a, &arrivals, &options, |_| {});
            assert_eq!(event.warm_starts, expect_warm, "{arrivals:?}");
            assert_eq!(event, naive, "engines must agree on the boundary");
        }
    }

    #[test]
    fn unsorted_arrivals_are_a_typed_error() {
        let platform = Platform::default();
        let err = try_simulate_pool_ext(
            &platform,
            &app(),
            &[0.0, 10.0, 5.0],
            &PoolOptions::default(),
        )
        .expect_err("unsorted arrivals must be rejected");
        assert_eq!(
            err,
            PoolError::UnsortedArrivals {
                index: 2,
                previous: 10.0,
                found: 5.0
            }
        );
        assert!(err.to_string().contains("sorted ascending"));
        let nan =
            try_simulate_pool_ext(&platform, &app(), &[0.0, f64::NAN], &PoolOptions::default())
                .expect_err("NaN arrivals must be rejected");
        assert_eq!(nan, PoolError::NanArrival { index: 1 });
        assert_eq!(validate_arrivals(&[0.0, 0.0, 3.5]), Ok(()));
        assert!(validate_arrivals(&[1.0, 0.5]).is_err());
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn unsorted_arrivals_panic_on_the_infallible_api() {
        simulate_pool_ext(
            &Platform::default(),
            &app(),
            &[3.0, 1.0],
            &PoolOptions::default(),
        );
    }

    #[test]
    fn stream_engine_matches_slice_engine() {
        let platform = Platform::default();
        let arrivals: Vec<f64> = (0..50).map(|i| (i / 3) as f64 * 40.0).collect();
        let options = PoolOptions {
            max_concurrency: Some(2),
            provisioned: 1,
            ..PoolOptions::default()
        };
        let mut slice_events = Vec::new();
        let sliced = simulate_pool_ext_traced(&platform, &app(), &arrivals, &options, |e| {
            slice_events.push(e)
        });
        let mut stream_events = Vec::new();
        let streamed = simulate_pool_ext_stream_traced(
            &platform,
            &app(),
            arrivals.iter().copied(),
            &options,
            |e| stream_events.push(e),
        )
        .expect("sorted arrivals");
        assert_eq!(sliced, streamed);
        assert_eq!(slice_events, stream_events);
    }

    /// Random sorted arrivals with bursts, plus random pool options —
    /// the in-module differential arm (tier-1 even without the
    /// `property-tests` feature; the wider sweep lives in
    /// `tests/property_tests.rs`).
    #[test]
    fn event_engine_matches_naive_engine_on_random_workloads() {
        let platform = Platform::default();
        let mut rng = Rng::seed_from_u64(0xE7E27);
        for case in 0..40 {
            let n = rng.usize_inclusive(0, 90);
            let mut arrivals = Vec::with_capacity(n);
            let mut t = 0.0;
            while arrivals.len() < n {
                t += rng.f64() * 30.0;
                let burst = if rng.usize_inclusive(0, 2) == 0 {
                    rng.usize_inclusive(2, 10)
                } else {
                    1
                };
                for _ in 0..burst.min(n - arrivals.len()) {
                    arrivals.push(t);
                }
            }
            let a = AppProfile::new(
                "diff",
                rng.f64() * 400.0,
                rng.f64() * 2.0,
                0.01 + rng.f64() * 20.0,
                64.0 + rng.f64() * 512.0,
            );
            let options = PoolOptions {
                keep_alive_secs: if rng.bool() { 0.0 } else { rng.f64() * 600.0 },
                mode: if rng.bool() {
                    StartMode::Standard
                } else {
                    StartMode::Restore
                },
                provisioned: rng.usize_inclusive(0, 3),
                max_concurrency: if rng.bool() {
                    Some(rng.usize_inclusive(0, 5))
                } else {
                    None
                },
                ..PoolOptions::default()
            };
            let mut naive_events = Vec::new();
            let naive = simulate_pool_ext_naive_traced(&platform, &a, &arrivals, &options, |e| {
                naive_events.push(e)
            });
            let mut event_events = Vec::new();
            let event = simulate_pool_ext_traced(&platform, &a, &arrivals, &options, |e| {
                event_events.push(e)
            });
            assert_eq!(naive, event, "case {case}: stats diverged");
            assert_eq!(naive_events, event_events, "case {case}: events diverged");
        }
    }

    #[test]
    fn matches_basic_pool_when_features_disabled() {
        let platform = Platform::default();
        let arrivals: Vec<f64> = (0..20).map(|i| i as f64 * 37.0).collect();
        let basic = crate::platform::simulate_pool(
            &platform,
            &app(),
            &arrivals,
            900.0,
            StartMode::Standard,
        );
        let ext = simulate_pool_ext(&platform, &app(), &arrivals, &PoolOptions::default());
        assert_eq!(basic.cold_starts, ext.cold_starts);
        assert_eq!(basic.warm_starts, ext.warm_starts);
        assert!((basic.total_cost - ext.invocation_cost).abs() < 1e-12);
    }

    #[test]
    fn trimming_and_provisioning_are_complementary() {
        // Debloating reduces the per-cold-start bill; provisioning reduces
        // cold-start *count* — both improve E2E but provisioning costs
        // standing money.
        let platform = Platform::default();
        let arrivals: Vec<f64> = (0..50).map(|i| i as f64 * 2400.0).collect();
        let original = app();
        let trimmed = AppProfile::new("demo-trim", 100.0, 0.3, 0.2, 380.0);
        let base = simulate_pool_ext(
            &platform,
            &original,
            &arrivals,
            &PoolOptions {
                keep_alive_secs: 900.0,
                ..PoolOptions::default()
            },
        );
        let trim_only = simulate_pool_ext(
            &platform,
            &trimmed,
            &arrivals,
            &PoolOptions {
                keep_alive_secs: 900.0,
                ..PoolOptions::default()
            },
        );
        assert!(trim_only.total_cost() < base.total_cost());
        assert!(trim_only.total_e2e_secs < base.total_e2e_secs);
    }
}
