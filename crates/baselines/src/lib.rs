//! # trim-baselines — the comparator debloaters of Table 2
//!
//! Faithful-in-spirit reimplementations of the two systems λ-trim is
//! compared against (§8.1, Table 2), operating on the same pylite substrate:
//!
//! * [`faaslight_trim`] — a FaaSLight-style debloater: **statement-level**,
//!   purely static, app-driven reachability. It seeds from the attributes
//!   the application's call graph touches, closes over intra-module name
//!   references to a fixpoint, and drops unreachable top-level statements.
//!   Because it works at statement granularity it cannot split a
//!   `from m import a, b, c` list (§6.1's argument), and like the original
//!   it retains a code-retrieval safeguard stub in each trimmed module,
//!   which costs a little memory (§3.1: "FaaSLight additionally retrieves
//!   the original code as a safeguard, yielding additional overheads").
//! * [`vulture_trim`] — a Vulture-style dead-code eliminator: removes only
//!   definitions whose names are referenced **nowhere** in the whole code
//!   base. As a generic (not serverless-aware) tool it does not touch
//!   import statements, so it cannot recover import time — matching the
//!   small improvements the paper reports for it.
//!
//! Both baselines validate each module against the oracle after trimming
//! and revert any module whose removal changed behavior — static analysis
//! over a dynamic language is unsound, and the paper notes FaaSLight needs
//! "extensive manual annotation" to be safe; the per-module revert models
//! that safety net mechanically.

#![warn(missing_docs)]

use pylite::ast::{Expr, Program, Stmt};
use pylite::Registry;
use std::collections::{BTreeMap, BTreeSet};
use trim_core::oracle::{oracle_passes, run_app, Execution, OracleSpec};
use trim_core::TrimError;

/// Result of running a baseline debloater.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// The trimmed registry (deployable).
    pub registry: Registry,
    /// Attributes removed per module.
    pub removed: BTreeMap<String, Vec<String>>,
    /// Modules whose trim broke the oracle and were reverted.
    pub reverted: Vec<String>,
    /// Baseline (original) execution.
    pub before: Execution,
    /// Execution of the trimmed application.
    pub after: Execution,
}

impl BaselineReport {
    /// Total number of attributes removed.
    pub fn attrs_removed(&self) -> usize {
        self.removed.values().map(Vec::len).sum()
    }
}

/// Collect every name that appears in a *load* position anywhere in the
/// program: expression names, attribute names, and from-import names.
fn referenced_names(program: &Program, out: &mut BTreeSet<String>) {
    fn walk_expr(e: &Expr, out: &mut BTreeSet<String>) {
        match e {
            Expr::Name(n) => {
                out.insert(n.clone());
            }
            Expr::Attribute { value, attr } => {
                out.insert(attr.clone());
                walk_expr(value, out);
            }
            Expr::Subscript { value, index } => {
                walk_expr(value, out);
                walk_expr(index, out);
            }
            Expr::Call { func, args, kwargs } => {
                walk_expr(func, out);
                for a in args {
                    walk_expr(a, out);
                }
                for (_, v) in kwargs {
                    walk_expr(v, out);
                }
            }
            Expr::List(items) | Expr::Tuple(items) => {
                for i in items {
                    walk_expr(i, out);
                }
            }
            Expr::Dict(pairs) => {
                for (k, v) in pairs {
                    walk_expr(k, out);
                    walk_expr(v, out);
                }
            }
            Expr::Unary { operand, .. } => walk_expr(operand, out),
            Expr::Binary { left, right, .. } => {
                walk_expr(left, out);
                walk_expr(right, out);
            }
            Expr::Bool { values, .. } => {
                for v in values {
                    walk_expr(v, out);
                }
            }
            Expr::Compare { left, ops } => {
                walk_expr(left, out);
                for (_, v) in ops {
                    walk_expr(v, out);
                }
            }
            Expr::Conditional { test, body, orelse } => {
                walk_expr(test, out);
                walk_expr(body, out);
                walk_expr(orelse, out);
            }
            Expr::ListComp {
                element,
                iter,
                cond,
                ..
            } => {
                walk_expr(element, out);
                walk_expr(iter, out);
                if let Some(c) = cond {
                    walk_expr(c, out);
                }
            }
            Expr::Slice { value, start, stop } => {
                walk_expr(value, out);
                if let Some(e) = start {
                    walk_expr(e, out);
                }
                if let Some(e) = stop {
                    walk_expr(e, out);
                }
            }
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut BTreeSet<String>) {
        match s {
            Stmt::Expr(e) | Stmt::Return(Some(e)) | Stmt::Raise(Some(e)) | Stmt::Del(e) => {
                walk_expr(e, out)
            }
            Stmt::Assign { targets, value } => {
                walk_expr(value, out);
                for t in targets {
                    // Attribute/subscript targets reference their base.
                    if !matches!(t, Expr::Name(_)) {
                        walk_expr(t, out);
                    }
                }
            }
            Stmt::AugAssign { target, value, .. } => {
                walk_expr(target, out);
                walk_expr(value, out);
            }
            Stmt::If { branches, orelse } => {
                for (t, b) in branches {
                    walk_expr(t, out);
                    for s in b {
                        walk_stmt(s, out);
                    }
                }
                for s in orelse {
                    walk_stmt(s, out);
                }
            }
            Stmt::While { test, body } => {
                walk_expr(test, out);
                for s in body {
                    walk_stmt(s, out);
                }
            }
            Stmt::For { iter, body, .. } => {
                walk_expr(iter, out);
                for s in body {
                    walk_stmt(s, out);
                }
            }
            Stmt::FuncDef(f) => {
                for p in &f.params {
                    if let Some(d) = &p.default {
                        walk_expr(d, out);
                    }
                }
                for s in &f.body {
                    walk_stmt(s, out);
                }
            }
            Stmt::ClassDef(c) => {
                for b in &c.bases {
                    out.insert(b.clone());
                }
                for s in &c.body {
                    walk_stmt(s, out);
                }
            }
            Stmt::FromImport { names, .. } => {
                for (n, _) in names {
                    out.insert(n.clone());
                }
            }
            Stmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                for s in body.iter().chain(orelse).chain(finalbody) {
                    walk_stmt(s, out);
                }
                for h in handlers {
                    if let Some(t) = &h.exc_type {
                        out.insert(t.clone());
                    }
                    for s in &h.body {
                        walk_stmt(s, out);
                    }
                }
            }
            Stmt::Assert { test, msg } => {
                walk_expr(test, out);
                if let Some(m) = msg {
                    walk_expr(m, out);
                }
            }
            _ => {}
        }
    }
    for s in &program.body {
        walk_stmt(s, out);
    }
}

/// Names a top-level statement binds, and names it references.
fn stmt_bindings_and_refs(stmt: &Stmt) -> (Vec<String>, BTreeSet<String>) {
    let mut refs = BTreeSet::new();
    referenced_names(
        &Program {
            body: vec![stmt.clone()],
        },
        &mut refs,
    );
    let bound = match stmt {
        Stmt::FuncDef(f) => vec![f.name.clone()],
        Stmt::ClassDef(c) => vec![c.name.clone()],
        Stmt::Assign { targets, .. } => targets.iter().flat_map(target_names).collect(),
        Stmt::Import { items } => items.iter().map(|i| i.bound_name().to_owned()).collect(),
        Stmt::FromImport { names, .. } => names
            .iter()
            .map(|(n, a)| a.clone().unwrap_or_else(|| n.clone()))
            .collect(),
        _ => Vec::new(),
    };
    // A binding's own name inside refs (e.g. recursion) must not keep it
    // alive by itself; the fixpoint handles this by seeding from roots.
    (bound, refs)
}

fn target_names(target: &Expr) -> Vec<String> {
    match target {
        Expr::Name(n) => vec![n.clone()],
        Expr::Tuple(items) | Expr::List(items) => items.iter().flat_map(target_names).collect(),
        _ => Vec::new(),
    }
}

/// FaaSLight-style statement-level reachability trim of one module.
///
/// Returns the rewritten program and the removed attribute names.
fn faaslight_trim_module(program: &Program, roots: &BTreeSet<String>) -> (Program, Vec<String>) {
    let stmts: Vec<(Vec<String>, BTreeSet<String>)> =
        program.body.iter().map(stmt_bindings_and_refs).collect();
    // Fixpoint: a statement is live if it binds nothing (executes for
    // effect) or binds a live name. Live statements make their referenced
    // names live.
    let mut live_names: BTreeSet<String> = roots.clone();
    let mut live_stmt = vec![false; stmts.len()];
    loop {
        let mut changed = false;
        for (i, (bound, refs)) in stmts.iter().enumerate() {
            if live_stmt[i] {
                continue;
            }
            let is_live = bound.is_empty()
                || bound
                    .iter()
                    .any(|b| live_names.contains(b) || trim_core::is_magic(b));
            if is_live {
                live_stmt[i] = true;
                changed = true;
                for b in bound {
                    live_names.insert(b.clone());
                }
                for r in refs {
                    if live_names.insert(r.clone()) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut body = Vec::new();
    let mut removed = Vec::new();
    for (i, stmt) in program.body.iter().enumerate() {
        if live_stmt[i] {
            body.push(stmt.clone());
        } else {
            removed.extend(stmts[i].0.iter().cloned());
        }
    }
    if body.is_empty() {
        body.push(Stmt::Pass);
    }
    (Program { body }, removed)
}

/// Run the FaaSLight-style baseline over an application.
///
/// # Errors
///
/// [`TrimError::Baseline`] if the original application fails its oracle run.
pub fn faaslight_trim(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
) -> Result<BaselineReport, TrimError> {
    let before = run_app(registry, app_source, spec).map_err(TrimError::Baseline)?;
    let app_program = pylite::parse(app_source).map_err(TrimError::Parse)?;
    // App-scope analysis only: FaaSLight's reachability does not model
    // library-internal re-export semantics, and the baseline should not
    // inherit λ-trim's interprocedural engine.
    let analysis = trim_analysis::analyze_app_only(&app_program, registry);

    // Roots per module: attributes the app's call graph touches, plus names
    // referenced from *other* modules' sources (a static over-approximation
    // of cross-module dependencies).
    let mut external_refs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for name in registry.module_names() {
        let mut refs = BTreeSet::new();
        if let Ok(p) = registry.parse_module(&name) {
            referenced_names(&p, &mut refs);
        }
        external_refs.insert(name, refs);
    }

    let mut work = registry.clone();
    let mut removed = BTreeMap::new();
    let mut reverted = Vec::new();
    for module in registry.module_names() {
        let program = match registry.parse_module(&module) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let mut roots = analysis.accessed_attrs(&module);
        for (other, refs) in &external_refs {
            if other != &module {
                roots.extend(refs.iter().cloned());
            }
        }
        let (trimmed, module_removed) = faaslight_trim_module(&program, &roots);
        if module_removed.is_empty() {
            continue;
        }
        let original_source = work.source(&module).expect("module exists").to_owned();
        let mut trimmed_src = pylite::unparse(&trimmed);
        // The safeguard stub: FaaSLight keeps machinery to re-fetch removed
        // code on demand; model its footprint as a small guard allocation.
        trimmed_src.push_str("__faaslight_guard__ = __lt_alloc__(0.5)\n");
        work.set_module(&module, trimmed_src);
        if oracle_passes(&work, app_source, spec, &before) {
            removed.insert(module.clone(), module_removed);
        } else {
            work.set_module(&module, original_source);
            reverted.push(module.clone());
        }
    }
    let after = run_app(&work, app_source, spec).map_err(TrimError::Baseline)?;
    Ok(BaselineReport {
        registry: work,
        removed,
        reverted,
        before,
        after,
    })
}

/// Run the Vulture-style baseline: remove definitions whose names appear in
/// a load position nowhere in the code base. Imports are never touched.
///
/// # Errors
///
/// [`TrimError::Baseline`] if the original application fails its oracle run.
pub fn vulture_trim(
    registry: &Registry,
    app_source: &str,
    spec: &OracleSpec,
) -> Result<BaselineReport, TrimError> {
    let before = run_app(registry, app_source, spec).map_err(TrimError::Baseline)?;
    let app_program = pylite::parse(app_source).map_err(TrimError::Parse)?;

    // Union of every referenced name across the entire code base.
    let mut used = BTreeSet::new();
    referenced_names(&app_program, &mut used);
    for name in registry.module_names() {
        if let Ok(p) = registry.parse_module(&name) {
            referenced_names(&p, &mut used);
        }
    }

    let mut work = registry.clone();
    let mut removed = BTreeMap::new();
    let mut reverted = Vec::new();
    for module in registry.module_names() {
        let program = match registry.parse_module(&module) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let mut body = Vec::new();
        let mut module_removed = Vec::new();
        for stmt in &program.body {
            let dead = match stmt {
                Stmt::FuncDef(f) => !used.contains(&f.name),
                Stmt::ClassDef(c) => !used.contains(&c.name),
                Stmt::Assign { targets, .. } => {
                    let names: Vec<String> = targets.iter().flat_map(target_names).collect();
                    !names.is_empty()
                        && names
                            .iter()
                            .all(|n| !used.contains(n) && !trim_core::is_magic(n))
                }
                // Vulture reports unused imports but a safe automated pass
                // leaves them in place (imports have side effects).
                _ => false,
            };
            if dead {
                match stmt {
                    Stmt::FuncDef(f) => module_removed.push(f.name.clone()),
                    Stmt::ClassDef(c) => module_removed.push(c.name.clone()),
                    Stmt::Assign { targets, .. } => {
                        module_removed.extend(targets.iter().flat_map(target_names))
                    }
                    _ => {}
                }
            } else {
                body.push(stmt.clone());
            }
        }
        if module_removed.is_empty() {
            continue;
        }
        if body.is_empty() {
            body.push(Stmt::Pass);
        }
        let original_source = work.source(&module).expect("module exists").to_owned();
        work.set_module(&module, pylite::unparse(&Program { body }));
        if oracle_passes(&work, app_source, spec, &before) {
            removed.insert(module.clone(), module_removed);
        } else {
            work.set_module(&module, original_source);
            reverted.push(module.clone());
        }
    }
    let after = run_app(&work, app_source, spec).map_err(TrimError::Baseline)?;
    Ok(BaselineReport {
        registry: work,
        removed,
        reverted,
        before,
        after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trim_core::oracle::TestCase;

    fn corpus() -> Registry {
        let mut r = Registry::new();
        r.set_module(
            "lib",
            "from lib.heavy import Big, Unused\n__lt_work__(20)\ndef api(x):\n    return helper(x)\ndef helper(x):\n    return x + 1\ndef dead_fn(x):\n    return x * 999\ndead_const = 12345\n",
        );
        r.set_module(
            "lib.heavy",
            "__lt_work__(100)\n_w = __lt_alloc__(40)\nclass Big:\n    pass\nclass Unused:\n    pass\n",
        );
        r
    }

    const APP: &str =
        "import lib\ndef handler(event, context):\n    return lib.api(event[\"n\"])\n";

    fn spec() -> OracleSpec {
        OracleSpec::new(vec![TestCase::event("{\"n\": 1}")])
    }

    #[test]
    fn faaslight_removes_unreachable_defs() {
        let report = faaslight_trim(&corpus(), APP, &spec()).unwrap();
        assert!(report.after.behavior_eq(&report.before));
        let lib_removed = report.removed.get("lib").cloned().unwrap_or_default();
        assert!(lib_removed.contains(&"dead_fn".to_owned()));
        assert!(lib_removed.contains(&"dead_const".to_owned()));
        // `helper` is referenced by `api` — kept by the fixpoint.
        let src = report.registry.source("lib").unwrap();
        assert!(src.contains("def helper"));
    }

    #[test]
    fn faaslight_cannot_split_from_import_lists() {
        // `Big`/`Unused` come from one from-import; the statement is live
        // because lib.heavy's classes are referenced *somewhere* — statement
        // granularity keeps the whole list (the §6.1 limitation).
        let report = faaslight_trim(&corpus(), APP, &spec()).unwrap();
        let src = report.registry.source("lib").unwrap();
        let kept_both = src.contains("Big") && src.contains("Unused");
        let dropped_both = !src.contains("Big") && !src.contains("Unused");
        assert!(
            kept_both || dropped_both,
            "statement granularity is all-or-nothing:\n{src}"
        );
    }

    #[test]
    fn faaslight_guard_costs_memory() {
        let report = faaslight_trim(&corpus(), APP, &spec()).unwrap();
        if !report.removed.is_empty() {
            let src = report.registry.source("lib").unwrap();
            assert!(src.contains("__faaslight_guard__"));
        }
    }

    #[test]
    fn vulture_removes_globally_unreferenced_defs_only() {
        let report = vulture_trim(&corpus(), APP, &spec()).unwrap();
        assert!(report.after.behavior_eq(&report.before));
        let lib_removed = report.removed.get("lib").cloned().unwrap_or_default();
        assert!(lib_removed.contains(&"dead_fn".to_owned()));
        // Imports are untouched, so lib.heavy still loads.
        let src = report.registry.source("lib").unwrap();
        assert!(src.contains("from lib.heavy import"));
    }

    #[test]
    fn vulture_never_beats_import_time() {
        let report = vulture_trim(&corpus(), APP, &spec()).unwrap();
        // lib.heavy's __lt_work__ still executes: init time barely moves.
        assert!(report.after.init_secs >= report.before.init_secs * 0.95);
    }

    #[test]
    fn baselines_preserve_behavior_or_revert() {
        // A module whose "dead" code is actually needed dynamically: the
        // oracle check must revert it.
        let mut r = corpus();
        r.set_module(
            "dynamic",
            "def hidden(x):\n    return x * 2\ndef api(x):\n    return getattr_helper(x)\ndef getattr_helper(x):\n    return hidden(x)\n",
        );
        let app = "import dynamic\nimport lib\ndef handler(event, context):\n    return dynamic.api(event[\"n\"]) + lib.api(0)\n";
        let report = faaslight_trim(&r, app, &spec()).unwrap();
        assert!(report.after.behavior_eq(&report.before));
    }

    #[test]
    fn report_counts_removed_attributes() {
        let report = faaslight_trim(&corpus(), APP, &spec()).unwrap();
        assert_eq!(
            report.attrs_removed(),
            report.removed.values().map(Vec::len).sum::<usize>()
        );
        assert!(report.attrs_removed() >= 2);
    }
}
