//! The module registry: a virtual "site-packages" mapping dotted module
//! names to source text.
//!
//! λ-trim's debloater rewrites library `__init__` sources and redeploys them
//! (§6.3); in this reproduction that is a [`Registry::set_module`] call. The
//! registry caches parsed programs per source revision so repeated imports
//! (across DD probes) do not re-parse unchanged modules.

use crate::ast::Program;
use crate::parser::{parse, ParseError};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A virtual filesystem of pylite modules, keyed by dotted name.
///
/// `Registry` is cheap to clone structurally (`Clone` deep-copies the source
/// map so debloater probes can mutate overlays independently).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    sources: HashMap<String, String>,
    cache: RefCell<HashMap<String, Rc<Program>>>,
}

impl PartialEq for Registry {
    /// Registries are equal when they hold the same module sources; the
    /// parse cache is an implementation detail.
    fn eq(&self, other: &Self) -> bool {
        self.sources == other.sources
    }
}

impl Eq for Registry {}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) a module's source. Replacing invalidates the
    /// parse cache entry for that module.
    pub fn set_module(&mut self, name: impl Into<String>, source: impl Into<String>) {
        let name = name.into();
        self.cache.borrow_mut().remove(&name);
        self.sources.insert(name, source.into());
    }

    /// Remove a module.
    pub fn remove_module(&mut self, name: &str) -> Option<String> {
        self.cache.borrow_mut().remove(name);
        self.sources.remove(name)
    }

    /// The source of a module, if present.
    pub fn source(&self, name: &str) -> Option<&str> {
        self.sources.get(name).map(String::as_str)
    }

    /// Whether a module exists.
    pub fn contains(&self, name: &str) -> bool {
        self.sources.contains_key(name)
    }

    /// All module names, sorted (deterministic iteration).
    pub fn module_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sources.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the registry holds no modules.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Total bytes of source text across all modules (used as a proxy for
    /// deployment-image code size).
    pub fn total_source_bytes(&self) -> u64 {
        self.sources.values().map(|s| s.len() as u64).sum()
    }

    /// Parse a module, caching the result until its source changes.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ParseError`] if the module does not parse.
    pub fn parse_module(&self, name: &str) -> Result<Rc<Program>, ParseError> {
        if let Some(p) = self.cache.borrow().get(name) {
            return Ok(p.clone());
        }
        let src = self.sources.get(name).ok_or_else(|| ParseError {
            message: format!("no module named `{name}` in registry"),
            line: 0,
        })?;
        let program = Rc::new(parse(src)?);
        self.cache
            .borrow_mut()
            .insert(name.to_owned(), program.clone());
        Ok(program)
    }

    /// Direct submodules of a dotted name that exist in the registry, e.g.
    /// `torch` → `torch.nn`, `torch.optim`.
    pub fn submodules(&self, name: &str) -> Vec<String> {
        let prefix = format!("{name}.");
        let mut subs: Vec<String> = self
            .sources
            .keys()
            .filter(|k| k.starts_with(&prefix) && !k[prefix.len()..].contains('.'))
            .cloned()
            .collect();
        subs.sort();
        subs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_modules() {
        let mut r = Registry::new();
        r.set_module("numpy", "x = 1\n");
        assert!(r.contains("numpy"));
        assert_eq!(r.source("numpy"), Some("x = 1\n"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn parse_is_cached_until_source_changes() {
        let mut r = Registry::new();
        r.set_module("m", "a = 1\n");
        let p1 = r.parse_module("m").unwrap();
        let p2 = r.parse_module("m").unwrap();
        assert!(Rc::ptr_eq(&p1, &p2), "second parse should hit the cache");
        r.set_module("m", "a = 2\n");
        let p3 = r.parse_module("m").unwrap();
        assert!(!Rc::ptr_eq(&p1, &p3), "source change must invalidate cache");
    }

    #[test]
    fn parse_missing_module_errors() {
        let r = Registry::new();
        assert!(r.parse_module("ghost").is_err());
    }

    #[test]
    fn submodules_are_direct_children_only() {
        let mut r = Registry::new();
        r.set_module("torch", "");
        r.set_module("torch.nn", "");
        r.set_module("torch.nn.functional", "");
        r.set_module("torch.optim", "");
        r.set_module("torchvision", "");
        assert_eq!(
            r.submodules("torch"),
            vec!["torch.nn".to_string(), "torch.optim".to_string()]
        );
    }

    #[test]
    fn total_source_bytes_sums_sources() {
        let mut r = Registry::new();
        r.set_module("a", "12345");
        r.set_module("b", "123");
        assert_eq!(r.total_source_bytes(), 8);
    }

    #[test]
    fn clone_is_independent() {
        let mut r = Registry::new();
        r.set_module("m", "a = 1\n");
        let mut r2 = r.clone();
        r2.set_module("m", "a = 2\n");
        assert_eq!(r.source("m"), Some("a = 1\n"));
        assert_eq!(r2.source("m"), Some("a = 2\n"));
    }
}
