//! The module registry: a virtual "site-packages" mapping dotted module
//! names to source text.
//!
//! λ-trim's debloater rewrites library `__init__` sources and redeploys them
//! (§6.3); in this reproduction that is a [`Registry::set_module`] call.
//!
//! The registry is a **copy-on-write** structure: sources are shared
//! `Arc<str>`s and parse results live in shared per-entry slots, so
//! `clone()` is O(modules) pointer bumps and every clone observes (and
//! contributes to) the same parse cache. That makes the thousands of DD
//! probe registries the debloater builds nearly free, and — because all
//! shared state is `Arc`/`OnceLock` — `Registry` is `Send + Sync` and can
//! cross thread boundaries for parallel probing.
//!
//! Each registry also maintains a **content fingerprint**: a stable,
//! order-independent hash of its `(name, source)` pairs, updated
//! incrementally on [`set_module`](Registry::set_module) /
//! [`remove_module`](Registry::remove_module). Probe caches key oracle
//! verdicts on it to share results across runs.

use crate::ast::Program;
use crate::bytecode::CodeObj;
use crate::intern::Interner;
use crate::parser::{parse, ParseError};
use crate::resolved::{resolve_program, RProgram};
use crate::snapshot::SnapshotStore;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// A shared, lazily filled per-entry slot for derived per-module data that
/// consumers (e.g. the analysis engine) want to compute once per module
/// *content* rather than once per run. Like the parse slots, it is shared
/// by every clone of the registry and dropped when `set_module` replaces
/// the entry, so staleness is impossible by construction.
#[derive(Clone, Default)]
struct SummarySlot(Arc<OnceLock<Arc<dyn Any + Send + Sync>>>);

impl fmt::Debug for SummarySlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.get().is_some() {
            "SummarySlot(filled)"
        } else {
            "SummarySlot(empty)"
        })
    }
}

/// One registry entry: shared source text plus shared, lazily filled parse
/// and resolve slots. Cloning an entry is four reference-count bumps.
#[derive(Debug, Clone)]
struct ModuleEntry {
    source: Arc<str>,
    /// `entry_hash(name, source)`, computed once at insertion so
    /// per-module fingerprint lookups (hot on the snapshot-replay path,
    /// which re-validates a whole import cone per candidate) are O(1)
    /// instead of re-hashing the source.
    hash: u64,
    parsed: Arc<OnceLock<Result<Arc<Program>, ParseError>>>,
    resolved: Arc<OnceLock<Result<Arc<RProgram>, ParseError>>>,
    bytecode: Arc<OnceLock<Result<Arc<CodeObj>, ParseError>>>,
    summary: SummarySlot,
}

impl ModuleEntry {
    fn new(name: &str, source: impl Into<Arc<str>>) -> Self {
        let source: Arc<str> = source.into();
        ModuleEntry {
            hash: entry_hash(name, &source),
            source,
            parsed: Arc::new(OnceLock::new()),
            resolved: Arc::new(OnceLock::new()),
            bytecode: Arc::new(OnceLock::new()),
            summary: SummarySlot::default(),
        }
    }
}

/// Stable FNV-1a hash of one `(name, source)` pair with a final avalanche,
/// so the order-independent combination below still mixes well.
fn entry_hash(name: &str, source: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    // Separator so ("ab", "c") and ("a", "bc") hash differently.
    h ^= 0xff;
    h = h.wrapping_mul(PRIME);
    for &b in source.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    // splitmix64 finalizer.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A virtual filesystem of pylite modules, keyed by dotted name.
///
/// `Registry` is copy-on-write: `clone()` shares sources and parse results
/// (O(modules) pointer bumps); mutation through [`set_module`] /
/// [`remove_module`](Registry::remove_module) replaces only the touched
/// entry, leaving every other clone untouched.
///
/// [`set_module`]: Registry::set_module
#[derive(Debug, Clone, Default)]
pub struct Registry {
    modules: HashMap<String, ModuleEntry>,
    fingerprint: u64,
    /// Name interner shared by every clone/overlay of this registry, so
    /// symbols are stable across the whole probe family. Deliberately NOT
    /// part of the fingerprint or `PartialEq`: symbols are an in-memory
    /// acceleration, and probe caches must hit across interner families.
    interner: Arc<Interner>,
    /// Compiled `__main__` bytecode, keyed by app-source content and shared
    /// by every clone/overlay: one app source drives thousands of DD probe
    /// interpreters, each of which would otherwise re-parse, re-resolve and
    /// re-compile it. Like the per-entry slots, this is derived data and
    /// deliberately absent from the fingerprint and `PartialEq`.
    main_code: Arc<Mutex<MainCodeCache>>,
    /// Init-snapshot cache shared by every clone/overlay of this registry
    /// family (see [`crate::snapshot`]). Entries are keyed by content
    /// fingerprints, so overlays with rewritten modules replay only the
    /// unchanged parts of their import cones. Derived data: deliberately
    /// absent from the fingerprint and `PartialEq`.
    snapshots: Arc<SnapshotStore>,
}

/// Content-keyed `__main__` bytecode cache: hash of the app source → the
/// full source (collision check) and its compiled code object.
type MainCodeCache = HashMap<u64, (Arc<str>, Arc<CodeObj>)>;

impl PartialEq for Registry {
    /// Registries are equal when they hold the same module sources; the
    /// parse cache is an implementation detail.
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.modules.len() == other.modules.len()
            && self
                .modules
                .iter()
                .all(|(k, e)| other.modules.get(k).is_some_and(|o| o.source == e.source))
    }
}

impl Eq for Registry {}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A stable, order-independent content fingerprint over all
    /// `(name, source)` pairs. Maintained incrementally: `set_module` and
    /// `remove_module` are O(changed source), not O(corpus). Two registries
    /// with identical sources have identical fingerprints regardless of
    /// insertion order; any source change changes it (modulo 64-bit hash
    /// collisions).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Install (or replace) a module's source. Replacing resets the parse
    /// slot for that module (other clones keep their shared result) and
    /// updates the content fingerprint incrementally.
    pub fn set_module(&mut self, name: impl Into<String>, source: impl Into<String>) {
        let name = name.into();
        let source: String = source.into();
        let entry = ModuleEntry::new(&name, source);
        if let Some(old) = self.modules.get(&name) {
            self.fingerprint = self.fingerprint.wrapping_sub(old.hash);
        }
        self.fingerprint = self.fingerprint.wrapping_add(entry.hash);
        self.modules.insert(name, entry);
    }

    /// Remove a module.
    pub fn remove_module(&mut self, name: &str) -> Option<String> {
        let entry = self.modules.remove(name)?;
        self.fingerprint = self.fingerprint.wrapping_sub(entry.hash);
        Some(entry.source.to_string())
    }

    /// A copy-on-write overlay: this registry with exactly one module
    /// replaced. The base and the overlay share every other entry's source
    /// and parse result — the debloater builds one of these per DD probe.
    #[must_use]
    pub fn with_module(&self, name: impl Into<String>, source: impl Into<String>) -> Registry {
        let mut overlay = self.clone();
        overlay.set_module(name, source);
        overlay
    }

    /// The source of a module, if present.
    pub fn source(&self, name: &str) -> Option<&str> {
        self.modules.get(name).map(|e| &*e.source)
    }

    /// Whether a module exists.
    pub fn contains(&self, name: &str) -> bool {
        self.modules.contains_key(name)
    }

    /// All module names, sorted (deterministic iteration).
    pub fn module_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.modules.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the registry holds no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Total bytes of source text across all modules (used as a proxy for
    /// deployment-image code size).
    pub fn total_source_bytes(&self) -> u64 {
        self.modules.values().map(|e| e.source.len() as u64).sum()
    }

    /// Parse a module, caching the result in a slot shared by every clone
    /// of this registry: the first caller (on any thread) parses, everyone
    /// else gets the shared `Arc<Program>` — reads are lock-free.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ParseError`] if the module does not parse.
    pub fn parse_module(&self, name: &str) -> Result<Arc<Program>, ParseError> {
        let entry = self.modules.get(name).ok_or_else(|| ParseError {
            message: format!("no module named `{name}` in registry"),
            line: 0,
        })?;
        entry
            .parsed
            .get_or_init(|| parse(&entry.source).map(Arc::new))
            .clone()
    }

    /// Parse *and* symbol-resolve a module (see [`crate::resolved`]),
    /// caching the resolved tree in a slot shared by every clone of this
    /// registry — the resolve pass runs once per module family, not once
    /// per probe interpreter.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ParseError`] if the module does not parse.
    pub fn resolve_module(&self, name: &str) -> Result<Arc<RProgram>, ParseError> {
        let entry = self.modules.get(name).ok_or_else(|| ParseError {
            message: format!("no module named `{name}` in registry"),
            line: 0,
        })?;
        entry
            .resolved
            .get_or_init(|| {
                let program = entry
                    .parsed
                    .get_or_init(|| parse(&entry.source).map(Arc::new))
                    .clone()?;
                Ok(Arc::new(resolve_program(&program, &self.interner)))
            })
            .clone()
    }

    /// Parse, resolve *and* bytecode-compile a module (see
    /// [`crate::bytecode`]), caching the [`CodeObj`] in a slot shared by
    /// every clone of this registry — like [`resolve_module`], the compile
    /// pass runs once per module family, not once per probe interpreter.
    /// The slot is derived data keyed by content and deliberately absent
    /// from the fingerprint and `PartialEq`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ParseError`] if the module does not parse.
    ///
    /// [`resolve_module`]: Registry::resolve_module
    pub fn compile_module(&self, name: &str) -> Result<Arc<CodeObj>, ParseError> {
        let entry = self.modules.get(name).ok_or_else(|| ParseError {
            message: format!("no module named `{name}` in registry"),
            line: 0,
        })?;
        entry
            .bytecode
            .get_or_init(|| {
                let resolved = self.resolve_module(name)?;
                Ok(Arc::new(crate::bytecode::compile_program(&resolved)))
            })
            .clone()
    }

    /// Parse, resolve and bytecode-compile an application (`__main__`)
    /// source, caching the [`CodeObj`] by *content* in a slot shared by
    /// every clone/overlay of this registry. `__main__` is not a registry
    /// module, but every DD probe executes the identical app source, so the
    /// compile pass runs once per app rather than once per probe. A hash
    /// collision falls back to a fresh (uncached) compile via the full
    /// source comparison.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ParseError`] if the source does not parse.
    pub fn compile_main(&self, source: &str) -> Result<Arc<CodeObj>, ParseError> {
        let key = entry_hash("__main__", source);
        if let Some((cached_src, code)) = self.main_code.lock().expect("main slot").get(&key) {
            if **cached_src == *source {
                return Ok(code.clone());
            }
        }
        let program = parse(source)?;
        let resolved = resolve_program(&program, &self.interner);
        let code = Arc::new(crate::bytecode::compile_program(&resolved));
        self.main_code
            .lock()
            .expect("main slot")
            .insert(key, (Arc::from(source), code.clone()));
        Ok(code)
    }

    /// The content fingerprint of a single module: the same `(name, source)`
    /// hash that [`fingerprint`](Registry::fingerprint) sums. Incremental
    /// consumers (the analysis summary cache) use it to decide which modules
    /// changed between two registry states without diffing sources.
    pub fn module_fingerprint(&self, name: &str) -> Option<u64> {
        self.modules.get(name).map(|e| e.hash)
    }

    /// Compute-once derived data for a module, keyed by content: the first
    /// caller's `build` result is cached in a slot shared by every clone of
    /// this registry and dropped when the module's source is replaced.
    /// Returns `None` if the module does not exist. If the slot already
    /// holds a value of a different type, `build` runs uncached.
    pub fn module_summary<T: Any + Send + Sync>(
        &self,
        name: &str,
        build: impl Fn() -> T,
    ) -> Option<Arc<T>> {
        let entry = self.modules.get(name)?;
        let any = entry
            .summary
            .0
            .get_or_init(|| Arc::new(build()) as Arc<dyn Any + Send + Sync>);
        match Arc::clone(any).downcast::<T>() {
            Ok(t) => Some(t),
            Err(_) => Some(Arc::new(build())),
        }
    }

    /// The name interner shared by this registry and all of its clones.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// The init-snapshot cache shared by this registry and all of its
    /// clones and copy-on-write overlays (see [`crate::snapshot`]).
    pub fn snapshot_store(&self) -> &Arc<SnapshotStore> {
        &self.snapshots
    }

    /// Direct submodules of a dotted name that exist in the registry, e.g.
    /// `torch` → `torch.nn`, `torch.optim`.
    pub fn submodules(&self, name: &str) -> Vec<String> {
        let prefix = format!("{name}.");
        let mut subs: Vec<String> = self
            .modules
            .keys()
            .filter(|k| k.starts_with(&prefix) && !k[prefix.len()..].contains('.'))
            .cloned()
            .collect();
        subs.sort();
        subs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_modules() {
        let mut r = Registry::new();
        r.set_module("numpy", "x = 1\n");
        assert!(r.contains("numpy"));
        assert_eq!(r.source("numpy"), Some("x = 1\n"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
    }

    #[test]
    fn parse_is_cached_until_source_changes() {
        let mut r = Registry::new();
        r.set_module("m", "a = 1\n");
        let p1 = r.parse_module("m").unwrap();
        let p2 = r.parse_module("m").unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "second parse should hit the cache");
        r.set_module("m", "a = 2\n");
        let p3 = r.parse_module("m").unwrap();
        assert!(
            !Arc::ptr_eq(&p1, &p3),
            "source change must invalidate cache"
        );
    }

    #[test]
    fn clones_share_parse_results() {
        let mut r = Registry::new();
        r.set_module("m", "a = 1\n");
        let clone = r.clone();
        // Parse through the clone first: the base must still see the result
        // (shared slot), not re-parse.
        let p1 = clone.parse_module("m").unwrap();
        let p2 = r.parse_module("m").unwrap();
        assert!(
            Arc::ptr_eq(&p1, &p2),
            "clone and base share one parse result"
        );
    }

    #[test]
    fn parse_missing_module_errors() {
        let r = Registry::new();
        assert!(r.parse_module("ghost").is_err());
    }

    #[test]
    fn parse_errors_are_cached_too() {
        let mut r = Registry::new();
        r.set_module("bad", "def broken(:\n");
        assert!(r.parse_module("bad").is_err());
        assert!(r.parse_module("bad").is_err());
        r.set_module("bad", "a = 1\n");
        assert!(r.parse_module("bad").is_ok(), "replacing clears the error");
    }

    #[test]
    fn submodules_are_direct_children_only() {
        let mut r = Registry::new();
        r.set_module("torch", "");
        r.set_module("torch.nn", "");
        r.set_module("torch.nn.functional", "");
        r.set_module("torch.optim", "");
        r.set_module("torchvision", "");
        assert_eq!(
            r.submodules("torch"),
            vec!["torch.nn".to_string(), "torch.optim".to_string()]
        );
    }

    #[test]
    fn total_source_bytes_sums_sources() {
        let mut r = Registry::new();
        r.set_module("a", "12345");
        r.set_module("b", "123");
        assert_eq!(r.total_source_bytes(), 8);
    }

    #[test]
    fn clone_is_independent() {
        let mut r = Registry::new();
        r.set_module("m", "a = 1\n");
        let mut r2 = r.clone();
        r2.set_module("m", "a = 2\n");
        assert_eq!(r.source("m"), Some("a = 1\n"));
        assert_eq!(r2.source("m"), Some("a = 2\n"));
    }

    #[test]
    fn overlay_replaces_exactly_one_module() {
        let mut r = Registry::new();
        r.set_module("a", "x = 1\n");
        r.set_module("b", "y = 2\n");
        let overlay = r.with_module("a", "x = 9\n");
        assert_eq!(overlay.source("a"), Some("x = 9\n"));
        assert_eq!(overlay.source("b"), Some("y = 2\n"));
        assert_eq!(r.source("a"), Some("x = 1\n"), "base untouched");
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let mut a = Registry::new();
        a.set_module("m1", "x = 1\n");
        a.set_module("m2", "y = 2\n");
        let mut b = Registry::new();
        b.set_module("m2", "y = 2\n");
        b.set_module("m1", "x = 1\n");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_changes_iff_sources_change() {
        let mut r = Registry::new();
        r.set_module("m", "x = 1\n");
        let fp = r.fingerprint();
        // Rewriting with the identical source is a no-op for the print.
        r.set_module("m", "x = 1\n");
        assert_eq!(r.fingerprint(), fp);
        r.set_module("m", "x = 2\n");
        assert_ne!(r.fingerprint(), fp);
        // Reverting restores the original fingerprint (incremental
        // maintenance matches recomputation from scratch).
        r.set_module("m", "x = 1\n");
        assert_eq!(r.fingerprint(), fp);
    }

    #[test]
    fn fingerprint_tracks_removal() {
        let mut r = Registry::new();
        let empty = r.fingerprint();
        r.set_module("m", "x = 1\n");
        assert_ne!(r.fingerprint(), empty);
        r.remove_module("m");
        assert_eq!(r.fingerprint(), empty);
    }

    #[test]
    fn clones_and_overlays_share_interner_and_resolution() {
        let mut r = Registry::new();
        r.set_module("m", "alpha = 1\n");
        r.set_module("n", "beta = 2\n");
        let clone = r.clone();
        let overlay = r.with_module("n", "beta = 3\n");
        let p1 = clone.resolve_module("m").unwrap();
        let p2 = r.resolve_module("m").unwrap();
        let p3 = overlay.resolve_module("m").unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "clone shares resolved tree");
        assert!(Arc::ptr_eq(&p1, &p3), "overlay shares untouched entries");
        assert!(Arc::ptr_eq(r.interner(), clone.interner()));
        assert!(Arc::ptr_eq(r.interner(), overlay.interner()));
        // The overlaid entry re-resolves, against the same interner.
        let sym = r.interner().lookup("alpha").unwrap();
        overlay.resolve_module("n").unwrap();
        assert_eq!(r.interner().lookup("alpha"), Some(sym));
    }

    #[test]
    fn set_module_resets_resolution() {
        let mut r = Registry::new();
        r.set_module("m", "a = 1\n");
        let p1 = r.resolve_module("m").unwrap();
        r.set_module("m", "a = 2\n");
        let p2 = r.resolve_module("m").unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2), "source change must re-resolve");
    }

    #[test]
    fn module_fingerprint_tracks_single_entries() {
        let mut r = Registry::new();
        r.set_module("m", "x = 1\n");
        r.set_module("n", "y = 2\n");
        let fm = r.module_fingerprint("m").unwrap();
        let fn_ = r.module_fingerprint("n").unwrap();
        assert_ne!(fm, fn_);
        assert_eq!(r.fingerprint(), fm.wrapping_add(fn_));
        assert!(r.module_fingerprint("ghost").is_none());
        r.set_module("m", "x = 9\n");
        assert_ne!(r.module_fingerprint("m").unwrap(), fm, "content change");
        assert_eq!(r.module_fingerprint("n").unwrap(), fn_, "untouched entry");
    }

    #[test]
    fn module_summary_caches_until_source_changes() {
        let mut r = Registry::new();
        r.set_module("m", "x = 1\n");
        let s1 = r.module_summary("m", || String::from("one")).unwrap();
        // Cached: the second build closure must not run.
        let s2 = r
            .module_summary("m", || -> String { unreachable!("cached") })
            .unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        // Clones share the slot.
        let clone = r.clone();
        let s3 = clone
            .module_summary("m", || -> String { unreachable!("shared") })
            .unwrap();
        assert!(Arc::ptr_eq(&s1, &s3));
        // Replacing the source drops the slot.
        r.set_module("m", "x = 2\n");
        let s4 = r.module_summary("m", || String::from("two")).unwrap();
        assert_eq!(*s4, "two");
        assert!(r.module_summary("ghost", || 0u32).is_none());
    }

    #[test]
    fn module_summary_type_mismatch_builds_uncached() {
        let mut r = Registry::new();
        r.set_module("m", "x = 1\n");
        let _: Arc<String> = r.module_summary("m", || String::from("s")).unwrap();
        let n: Arc<u64> = r.module_summary("m", || 7u64).unwrap();
        assert_eq!(*n, 7);
    }

    #[test]
    fn fingerprint_separates_name_and_source() {
        let mut a = Registry::new();
        a.set_module("ab", "c");
        let mut b = Registry::new();
        b.set_module("a", "bc");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
