//! Name interning: dense `u32` [`Symbol`]s for identifiers and attributes.
//!
//! Every [`Registry`](crate::Registry) family (the original plus all
//! copy-on-write clones and overlays) shares one [`Interner`], so a name
//! resolves to the *same* symbol in every probe registry derived from the
//! same base. Namespace maps key on `Symbol` instead of `Rc<str>`: lookups
//! hash a single `u32` and never clone key strings, which is the difference
//! between `O(len)` string hashing and a single multiply on the
//! interpreter's hottest path (see DESIGN.md §8).
//!
//! The interner also hands out globally unique *inline-cache site ids* for
//! attribute-access sites in the resolved IR ([`crate::resolved`]); sites
//! are allocated from the same shared counter so ids never collide across
//! modules of one registry family.
//!
//! Symbols are an in-memory acceleration only: they are never persisted,
//! fingerprinted, or compared across interner families. Registry
//! fingerprints and probe-cache keys stay content-based (strings), so two
//! registries that interned names in different orders still cache-hit each
//! other's probe verdicts.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, RwLock};

/// An interned name: a dense index into the [`Interner`] that issued it.
///
/// Symbols are `Copy`, compare in one instruction, and hash as a single
/// `u32`. A symbol is only meaningful together with its interner; symbols
/// from different interner families must never be mixed (the registry
/// shares one interner across all clones precisely to make mixing
/// impossible in practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw dense index (useful for tests and diagnostics).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A fast multiplicative hasher for symbol/`u32` keys.
///
/// `HashMap`'s default SipHash is robust against adversarial keys but costs
/// tens of cycles per lookup; symbols are small dense integers produced by
/// our own interner, so a Fibonacci-style multiply gives full avalanche in
/// a couple of cycles with no DoS surface.
#[derive(Debug, Default, Clone)]
pub struct SymbolHasher(u64);

const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for SymbolHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys (FNV-1a); symbol maps never hit it.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u32(&mut self, n: u32) {
        // Mix into (not over) the state so tuple keys hash both halves.
        self.0 = (self.0.rotate_left(16) ^ u64::from(n)).wrapping_mul(PHI);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(32) ^ n).wrapping_mul(PHI);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for symbol-keyed maps and sets.
pub type SymbolHashBuilder = BuildHasherDefault<SymbolHasher>;

#[derive(Debug, Default)]
struct InternerInner {
    map: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

/// A thread-safe, append-only string interner.
///
/// Interning is idempotent: the first caller to intern a string picks its
/// symbol, every later caller (from any thread, any registry clone) gets
/// the same one. The common case — the string is already interned — takes
/// only a read lock.
#[derive(Debug, Default)]
pub struct Interner {
    inner: RwLock<InternerInner>,
    /// Monotonic allocator for attribute inline-cache site ids.
    sites: AtomicU32,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its stable symbol.
    pub fn intern(&self, s: &str) -> Symbol {
        if let Some(&id) = self.inner.read().expect("interner poisoned").map.get(s) {
            return Symbol(id);
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        if let Some(&id) = inner.map.get(s) {
            return Symbol(id); // raced with another writer
        }
        let id = u32::try_from(inner.names.len()).expect("interner overflow");
        let name: Arc<str> = Arc::from(s);
        inner.names.push(Arc::clone(&name));
        inner.map.insert(name, id);
        Symbol(id)
    }

    /// The symbol for `s`, if it has ever been interned.
    ///
    /// Useful for lookups with runtime-supplied names (`getattr`,
    /// `call_handler`): a name that was never interned cannot key any
    /// symbol-keyed namespace, so `None` means "not found" without growing
    /// the interner.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.inner
            .read()
            .expect("interner poisoned")
            .map
            .get(s)
            .map(|&id| Symbol(id))
    }

    /// The string `sym` was interned from.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner and is out of range —
    /// mixing interner families is a logic error.
    pub fn resolve(&self, sym: Symbol) -> Arc<str> {
        Arc::clone(&self.inner.read().expect("interner poisoned").names[sym.0 as usize])
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner poisoned").names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate one fresh inline-cache site id.
    pub fn alloc_site(&self) -> u32 {
        self.sites.fetch_add(1, Ordering::Relaxed)
    }

    /// Total inline-cache site ids allocated so far.
    pub fn site_count(&self) -> u32 {
        self.sites.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{BuildHasher, Hash};

    #[test]
    fn intern_is_idempotent_and_dense() {
        let i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        for name in ["x", "y", "__name__", ""] {
            let sym = i.intern(name);
            assert_eq!(&*i.resolve(sym), name);
            assert_eq!(i.lookup(name), Some(sym));
        }
        assert_eq!(i.lookup("never-seen"), None);
    }

    #[test]
    fn interner_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Interner>();
        assert_send_sync::<Symbol>();
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = Arc::new(Interner::new());
        let names: Vec<String> = (0..64).map(|n| format!("name{n}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let i = Arc::clone(&i);
                let names = names.clone();
                std::thread::spawn(move || names.iter().map(|n| i.intern(n)).collect::<Vec<_>>())
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(i.len(), 64);
    }

    #[test]
    fn site_ids_are_unique() {
        let i = Interner::new();
        let a = i.alloc_site();
        let b = i.alloc_site();
        assert_ne!(a, b);
        assert_eq!(i.site_count(), 2);
    }

    #[test]
    fn tuple_symbol_hashing_uses_both_halves() {
        let build = SymbolHashBuilder::default();
        let hash = |a: Symbol, b: Symbol| {
            let mut h = <SymbolHashBuilder as BuildHasher>::build_hasher(&build);
            (a, b).hash(&mut h);
            h.finish()
        };
        let i = Interner::new();
        let (x, y) = (i.intern("x"), i.intern("y"));
        assert_ne!(hash(x, y), hash(y, x));
        // Sanity: the fallback byte path also mixes.
        let mut h = DefaultHasher::new();
        "x".hash(&mut h);
        let _ = h.finish();
    }
}
