//! # pylite — a Python-subset runtime with instrumentable import machinery
//!
//! pylite is the language substrate of the λ-trim reproduction. It implements
//! the slice of Python that matters to cost-driven debloating of serverless
//! functions:
//!
//! * an indentation-aware [`lexer`] and recursive-descent [`parser`]
//!   producing a CPython-like [`ast`];
//! * a tree-walking [`interp::Interpreter`] with real module objects,
//!   namespaces built by executing top-level statements, `import` /
//!   `from-import`, a `sys.modules` cache, exceptions (including the
//!   `AttributeError` that λ-trim's fallback relies on), classes, and a
//!   useful set of builtins;
//! * a [`registry::Registry`] virtual site-packages that the debloater
//!   rewrites in place;
//! * a deterministic [`cost`] model — a virtual clock and simulated memory
//!   accountant — plus the `__lt_work__` / `__lt_alloc__` / `__lt_extcall__`
//!   intrinsics that the synthetic library corpus uses to model native work.
//!
//! # Example
//!
//! ```
//! use pylite::{Interpreter, Registry};
//!
//! # fn main() -> Result<(), pylite::PyErr> {
//! let mut registry = Registry::new();
//! registry.set_module("mathlib", "def double(x):\n    return x * 2\n");
//!
//! let mut interp = Interpreter::new(registry);
//! interp.exec_main("import mathlib\nprint(mathlib.double(21))")?;
//! assert_eq!(interp.stdout, vec!["42"]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod cost;
pub mod intern;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod registry;
pub mod resolved;
pub mod snapshot;
pub mod value;

pub use ast::{unparse, Program, Stmt};
pub use bytecode::{compile_program, CodeObj};
pub use cost::{CostModel, Meter};
pub use intern::{Interner, Symbol, SymbolHashBuilder};
pub use interp::{Engine, IcSiteStats, ImportEvent, Interpreter};
pub use parser::{parse, parse_expr, ParseError};
pub use registry::Registry;
pub use resolved::{resolve_program, RProgram};
pub use snapshot::{SnapshotStats, SnapshotStore};
pub use value::{py_eq, py_repr, py_str, ExcKind, Namespace, PyErr, Value};
