//! Recursive-descent parser producing the [`crate::ast`] representation.

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parse a full pylite module.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntactic problem found.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let body = p.parse_block_until_eof()?;
    Ok(Program { body })
}

/// Parse a single expression (used for oracle event literals).
///
/// # Errors
///
/// Returns a [`ParseError`] if the source is not exactly one expression.
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expression()?;
    p.skip_newlines();
    if !matches!(p.peek(), Tok::Eof) {
        return Err(p.error("trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.peek_line(),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{tok}`, found `{}`", self.peek())))
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    /// True if the next token is the keyword `kw`.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Name(n) if n == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found `{}`", self.peek())))
        }
    }

    fn expect_name(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Name(n) if !is_keyword(&n) => {
                self.bump();
                Ok(n)
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn parse_block_until_eof(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            if matches!(self.peek(), Tok::Eof) {
                return Ok(body);
            }
            body.push(self.statement()?);
        }
    }

    /// Parse an indented suite following a `:`.
    fn suite(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::Colon)?;
        if !matches!(self.peek(), Tok::Newline) {
            // Single-line suite: `if x: return 1`
            let mut body = vec![self.simple_statement()?];
            while self.eat(Tok::Semi) {
                if matches!(self.peek(), Tok::Newline | Tok::Eof) {
                    break;
                }
                body.push(self.simple_statement()?);
            }
            if !matches!(self.peek(), Tok::Eof) {
                self.expect(Tok::Newline)?;
            }
            return Ok(body);
        }
        self.expect(Tok::Newline)?;
        self.skip_newlines();
        self.expect(Tok::Indent)?;
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            if matches!(self.peek(), Tok::Dedent) {
                self.bump();
                break;
            }
            if matches!(self.peek(), Tok::Eof) {
                break;
            }
            body.push(self.statement()?);
        }
        Ok(body)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if let Tok::Name(n) = self.peek() {
            match n.as_str() {
                "if" => return self.if_statement(),
                "while" => return self.while_statement(),
                "for" => return self.for_statement(),
                "def" => return self.func_def(),
                "class" => return self.class_def(),
                "try" => return self.try_statement(),
                _ => {}
            }
        }
        let stmt = self.simple_statement()?;
        // Semicolon-separated simple statements on one line are not preserved
        // as a compound construct; we flatten by returning the first and
        // requiring callers to loop — to keep things simple pylite only
        // supports `;` inside single-line suites.
        if !matches!(self.peek(), Tok::Eof) {
            self.expect(Tok::Newline)?;
        }
        Ok(stmt)
    }

    fn simple_statement(&mut self) -> Result<Stmt, ParseError> {
        if let Tok::Name(n) = self.peek() {
            match n.as_str() {
                "return" => {
                    self.bump();
                    if matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Semi) {
                        return Ok(Stmt::Return(None));
                    }
                    return Ok(Stmt::Return(Some(self.expression()?)));
                }
                "pass" => {
                    self.bump();
                    return Ok(Stmt::Pass);
                }
                "break" => {
                    self.bump();
                    return Ok(Stmt::Break);
                }
                "continue" => {
                    self.bump();
                    return Ok(Stmt::Continue);
                }
                "import" => return self.import_statement(),
                "from" => return self.from_import_statement(),
                "raise" => {
                    self.bump();
                    if matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Semi) {
                        return Ok(Stmt::Raise(None));
                    }
                    return Ok(Stmt::Raise(Some(self.expression()?)));
                }
                "global" => {
                    self.bump();
                    let mut names = vec![self.expect_name()?];
                    while self.eat(Tok::Comma) {
                        names.push(self.expect_name()?);
                    }
                    return Ok(Stmt::Global(names));
                }
                "assert" => {
                    self.bump();
                    let test = self.expression()?;
                    let msg = if self.eat(Tok::Comma) {
                        Some(self.expression()?)
                    } else {
                        None
                    };
                    return Ok(Stmt::Assert { test, msg });
                }
                "del" => {
                    self.bump();
                    let target = self.expression()?;
                    return Ok(Stmt::Del(target));
                }
                _ => {}
            }
        }
        // Expression / assignment statement. A bare comma at statement level
        // forms an unparenthesized tuple (`a, b = f()`).
        let mut first = self.expression()?;
        if matches!(self.peek(), Tok::Comma) {
            let mut items = vec![first];
            while self.eat(Tok::Comma) {
                if matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Eq | Tok::Semi) {
                    break;
                }
                items.push(self.expression()?);
            }
            first = Expr::Tuple(items);
        }
        match self.peek() {
            Tok::Eq => {
                let mut targets = vec![first];
                while self.eat(Tok::Eq) {
                    let next = self.expression()?;
                    targets.push(next);
                }
                let value = targets.pop().expect("at least rhs");
                for t in &targets {
                    validate_target(t).map_err(|m| self.error(m))?;
                }
                Ok(Stmt::Assign { targets, value })
            }
            Tok::PlusEq | Tok::MinusEq | Tok::StarEq | Tok::SlashEq => {
                let op = match self.bump() {
                    Tok::PlusEq => BinOp::Add,
                    Tok::MinusEq => BinOp::Sub,
                    Tok::StarEq => BinOp::Mul,
                    Tok::SlashEq => BinOp::Div,
                    _ => unreachable!(),
                };
                validate_target(&first).map_err(|m| self.error(m))?;
                let value = self.expression()?;
                Ok(Stmt::AugAssign {
                    target: first,
                    op,
                    value,
                })
            }
            _ => Ok(Stmt::Expr(first)),
        }
    }

    fn if_statement(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("if")?;
        let test = self.expression()?;
        let body = self.suite()?;
        let mut branches = vec![(test, body)];
        let mut orelse = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_kw("elif") {
                self.bump();
                let t = self.expression()?;
                let b = self.suite()?;
                branches.push((t, b));
            } else if self.at_kw("else") {
                self.bump();
                orelse = self.suite()?;
                break;
            } else {
                break;
            }
        }
        Ok(Stmt::If { branches, orelse })
    }

    fn while_statement(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("while")?;
        let test = self.expression()?;
        let body = self.suite()?;
        Ok(Stmt::While { test, body })
    }

    fn for_statement(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("for")?;
        let mut targets = vec![self.expect_name()?];
        while self.eat(Tok::Comma) {
            targets.push(self.expect_name()?);
        }
        self.expect_kw("in")?;
        let iter = self.expression()?;
        let body = self.suite()?;
        Ok(Stmt::For {
            targets,
            iter,
            body,
        })
    }

    fn func_def(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("def")?;
        let name = self.expect_name()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        while !matches!(self.peek(), Tok::RParen) {
            let pname = self.expect_name()?;
            // Optional type annotation: `x: int` — parsed and discarded.
            if self.eat(Tok::Colon) {
                let _ = self.expression()?;
            }
            let default = if self.eat(Tok::Eq) {
                Some(self.expression()?)
            } else {
                None
            };
            params.push(Param {
                name: pname,
                default,
            });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        // Optional return annotation.
        if self.eat(Tok::Arrow) {
            let _ = self.expression()?;
        }
        let body = self.suite()?;
        Ok(Stmt::FuncDef(FuncDef { name, params, body }))
    }

    fn class_def(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("class")?;
        let name = self.expect_name()?;
        let mut bases = Vec::new();
        if self.eat(Tok::LParen) {
            while !matches!(self.peek(), Tok::RParen) {
                bases.push(self.dotted_name()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        let body = self.suite()?;
        Ok(Stmt::ClassDef(ClassDef { name, bases, body }))
    }

    fn try_statement(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("try")?;
        let body = self.suite()?;
        let mut handlers = Vec::new();
        let mut orelse = Vec::new();
        let mut finalbody = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_kw("except") {
                self.bump();
                let mut exc_type = None;
                let mut name = None;
                if !matches!(self.peek(), Tok::Colon) {
                    exc_type = Some(self.expect_name()?);
                    if self.eat_kw("as") {
                        name = Some(self.expect_name()?);
                    }
                }
                let hbody = self.suite()?;
                handlers.push(ExceptHandler {
                    exc_type,
                    name,
                    body: hbody,
                });
            } else if self.at_kw("else") {
                self.bump();
                orelse = self.suite()?;
            } else if self.at_kw("finally") {
                self.bump();
                finalbody = self.suite()?;
                break;
            } else {
                break;
            }
        }
        if handlers.is_empty() && finalbody.is_empty() {
            return Err(self.error("try statement must have except or finally"));
        }
        Ok(Stmt::Try {
            body,
            handlers,
            orelse,
            finalbody,
        })
    }

    fn dotted_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.expect_name()?;
        while self.eat(Tok::Dot) {
            name.push('.');
            name.push_str(&self.expect_name()?);
        }
        Ok(name)
    }

    fn import_statement(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("import")?;
        let mut items = Vec::new();
        loop {
            let module = self.dotted_name()?;
            let alias = if self.eat_kw("as") {
                Some(self.expect_name()?)
            } else {
                None
            };
            items.push(ImportItem { module, alias });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        Ok(Stmt::Import { items })
    }

    #[allow(clippy::wrong_self_convention)] // parses `from ... import`, not a conversion
    fn from_import_statement(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("from")?;
        let module = self.dotted_name()?;
        self.expect_kw("import")?;
        if self.eat(Tok::Star) {
            // `from m import *` — a single pseudo-name the interpreter and
            // analyzer expand to every public binding of `m`.
            return Ok(Stmt::FromImport {
                module,
                names: vec![("*".to_owned(), None)],
            });
        }
        let parenthesized = self.eat(Tok::LParen);
        let mut names = Vec::new();
        loop {
            if parenthesized {
                self.skip_newlines();
            }
            let n = self.expect_name()?;
            let a = if self.eat_kw("as") {
                Some(self.expect_name()?)
            } else {
                None
            };
            names.push((n, a));
            if !self.eat(Tok::Comma) {
                break;
            }
            if parenthesized {
                self.skip_newlines();
                if matches!(self.peek(), Tok::RParen) {
                    break;
                }
            }
        }
        if parenthesized {
            self.skip_newlines();
            self.expect(Tok::RParen)?;
        }
        Ok(Stmt::FromImport { module, names })
    }

    // -- Expressions, by precedence --------------------------------------

    fn expression(&mut self) -> Result<Expr, ParseError> {
        let value = self.or_expr()?;
        if self.at_kw("if") {
            self.bump();
            let test = self.or_expr()?;
            self.expect_kw("else")?;
            let orelse = self.expression()?;
            return Ok(Expr::Conditional {
                test: Box::new(test),
                body: Box::new(value),
                orelse: Box::new(orelse),
            });
        }
        Ok(value)
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.and_expr()?;
        if !self.at_kw("or") {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat_kw("or") {
            values.push(self.and_expr()?);
        }
        Ok(Expr::Bool {
            op: BoolOp::Or,
            values,
        })
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.not_expr()?;
        if !self.at_kw("and") {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat_kw("and") {
            values.push(self.not_expr()?);
        }
        Ok(Expr::Bool {
            op: BoolOp::And,
            values,
        })
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.arith()?;
        let mut ops = Vec::new();
        loop {
            let op = match self.peek() {
                Tok::EqEq => CmpOp::Eq,
                Tok::NotEq => CmpOp::Ne,
                Tok::Lt => CmpOp::Lt,
                Tok::LtEq => CmpOp::Le,
                Tok::Gt => CmpOp::Gt,
                Tok::GtEq => CmpOp::Ge,
                Tok::Name(n) if n == "in" => CmpOp::In,
                Tok::Name(n) if n == "is" => CmpOp::Is,
                Tok::Name(n) if n == "not" => {
                    // `not in`
                    self.bump();
                    self.expect_kw("in")?;
                    let right = self.arith()?;
                    ops.push((CmpOp::NotIn, right));
                    continue;
                }
                _ => break,
            };
            self.bump();
            let op = if op == CmpOp::Is && self.eat_kw("not") {
                CmpOp::IsNot
            } else {
                op
            };
            let right = self.arith()?;
            ops.push((op, right));
        }
        if ops.is_empty() {
            Ok(left)
        } else {
            Ok(Expr::Compare {
                left: Box::new(left),
                ops,
            })
        }
    }

    fn arith(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.term()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::DoubleSlash => BinOp::FloorDiv,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(operand),
                })
            }
            Tok::Plus => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::Unary {
                    op: UnaryOp::Pos,
                    operand: Box::new(operand),
                })
            }
            _ => self.power(),
        }
    }

    fn power(&mut self) -> Result<Expr, ParseError> {
        let base = self.postfix()?;
        if self.eat(Tok::DoubleStar) {
            let exp = self.unary()?;
            return Ok(Expr::Binary {
                left: Box::new(base),
                op: BinOp::Pow,
                right: Box::new(exp),
            });
        }
        Ok(base)
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let attr = self.expect_name()?;
                    e = Expr::Attribute {
                        value: Box::new(e),
                        attr,
                    };
                }
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    let mut kwargs = Vec::new();
                    while !matches!(self.peek(), Tok::RParen) {
                        self.skip_newlines();
                        // Keyword argument: `name=value` (lookahead).
                        if let Tok::Name(n) = self.peek().clone() {
                            if !is_keyword(&n)
                                && self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&Tok::Eq)
                            {
                                self.bump();
                                self.bump();
                                let v = self.expression()?;
                                kwargs.push((n, v));
                                if !self.eat(Tok::Comma) {
                                    break;
                                }
                                continue;
                            }
                        }
                        args.push(self.expression()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.skip_newlines();
                    self.expect(Tok::RParen)?;
                    e = Expr::Call {
                        func: Box::new(e),
                        args,
                        kwargs,
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    // Slice with omitted start: `a[:stop]`.
                    if self.eat(Tok::Colon) {
                        let stop = if matches!(self.peek(), Tok::RBracket) {
                            None
                        } else {
                            Some(Box::new(self.expression()?))
                        };
                        self.expect(Tok::RBracket)?;
                        e = Expr::Slice {
                            value: Box::new(e),
                            start: None,
                            stop,
                        };
                        continue;
                    }
                    let index = self.expression()?;
                    if self.eat(Tok::Colon) {
                        let stop = if matches!(self.peek(), Tok::RBracket) {
                            None
                        } else {
                            Some(Box::new(self.expression()?))
                        };
                        self.expect(Tok::RBracket)?;
                        e = Expr::Slice {
                            value: Box::new(e),
                            start: Some(Box::new(index)),
                            stop,
                        };
                        continue;
                    }
                    self.expect(Tok::RBracket)?;
                    e = Expr::Subscript {
                        value: Box::new(e),
                        index: Box::new(index),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            Tok::Str(s) => {
                self.bump();
                // Adjacent string literal concatenation.
                let mut out = s;
                while let Tok::Str(next) = self.peek().clone() {
                    self.bump();
                    out.push_str(&next);
                }
                Ok(Expr::Str(out))
            }
            Tok::Name(n) => match n.as_str() {
                "None" => {
                    self.bump();
                    Ok(Expr::None)
                }
                "True" => {
                    self.bump();
                    Ok(Expr::True)
                }
                "False" => {
                    self.bump();
                    Ok(Expr::False)
                }
                _ if is_keyword(&n) => Err(self.error(format!("unexpected keyword `{n}`"))),
                _ => {
                    self.bump();
                    Ok(Expr::Name(n))
                }
            },
            Tok::LParen => {
                self.bump();
                self.skip_newlines();
                if self.eat(Tok::RParen) {
                    return Ok(Expr::Tuple(vec![]));
                }
                let first = self.expression()?;
                if self.eat(Tok::Comma) {
                    let mut items = vec![first];
                    loop {
                        self.skip_newlines();
                        if matches!(self.peek(), Tok::RParen) {
                            break;
                        }
                        items.push(self.expression()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.skip_newlines();
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Tuple(items))
                } else {
                    self.skip_newlines();
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::LBracket => {
                self.bump();
                self.skip_newlines();
                if self.eat(Tok::RBracket) {
                    return Ok(Expr::List(vec![]));
                }
                let first = self.expression()?;
                // `[expr for x in iter]` — a list comprehension.
                if self.at_kw("for") {
                    self.bump();
                    let mut targets = vec![self.expect_name()?];
                    while self.eat(Tok::Comma) {
                        targets.push(self.expect_name()?);
                    }
                    self.expect_kw("in")?;
                    // `or_expr` (not `expression`) so the comprehension's
                    // `if` filter is not mistaken for a conditional expr.
                    let iter = self.or_expr()?;
                    let cond = if self.eat_kw("if") {
                        Some(Box::new(self.or_expr()?))
                    } else {
                        None
                    };
                    self.skip_newlines();
                    self.expect(Tok::RBracket)?;
                    return Ok(Expr::ListComp {
                        element: Box::new(first),
                        targets,
                        iter: Box::new(iter),
                        cond,
                    });
                }
                let mut items = vec![first];
                while self.eat(Tok::Comma) {
                    self.skip_newlines();
                    if matches!(self.peek(), Tok::RBracket) {
                        break;
                    }
                    items.push(self.expression()?);
                }
                self.skip_newlines();
                self.expect(Tok::RBracket)?;
                Ok(Expr::List(items))
            }
            Tok::LBrace => {
                self.bump();
                let mut pairs = Vec::new();
                loop {
                    self.skip_newlines();
                    if matches!(self.peek(), Tok::RBrace) {
                        break;
                    }
                    let k = self.expression()?;
                    self.expect(Tok::Colon)?;
                    let v = self.expression()?;
                    pairs.push((k, v));
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.skip_newlines();
                self.expect(Tok::RBrace)?;
                Ok(Expr::Dict(pairs))
            }
            other => Err(self.error(format!("unexpected token `{other}`"))),
        }
    }
}

fn validate_target(e: &Expr) -> Result<(), String> {
    match e {
        Expr::Name(_) | Expr::Attribute { .. } | Expr::Subscript { .. } => Ok(()),
        Expr::Tuple(items) | Expr::List(items) => {
            for i in items {
                validate_target(i)?;
            }
            Ok(())
        }
        _ => Err("invalid assignment target".into()),
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "elif"
            | "else"
            | "while"
            | "for"
            | "in"
            | "def"
            | "class"
            | "return"
            | "pass"
            | "break"
            | "continue"
            | "import"
            | "from"
            | "as"
            | "raise"
            | "try"
            | "except"
            | "finally"
            | "global"
            | "assert"
            | "del"
            | "and"
            | "or"
            | "not"
            | "is"
            | "lambda"
            | "None"
            | "True"
            | "False"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::unparse;

    #[test]
    fn parses_assignment() {
        let p = parse("x = 1 + 2 * 3\n").unwrap();
        assert_eq!(p.body.len(), 1);
        match &p.body[0] {
            Stmt::Assign { targets, value } => {
                assert_eq!(targets, &[Expr::Name("x".into())]);
                // 1 + (2 * 3) — precedence check.
                match value {
                    Expr::Binary {
                        op: BinOp::Add,
                        right,
                        ..
                    } => {
                        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_function_with_defaults_and_annotations() {
        let p = parse("def f(a, b=2, c: int = 3) -> int:\n    return a + b + c\n").unwrap();
        match &p.body[0] {
            Stmt::FuncDef(f) => {
                assert_eq!(f.params.len(), 3);
                assert!(f.params[0].default.is_none());
                assert_eq!(f.params[1].default, Some(Expr::Int(2)));
                assert_eq!(f.params[2].default, Some(Expr::Int(3)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_class_with_base() {
        let p = parse("class A(B):\n    x = 1\n").unwrap();
        match &p.body[0] {
            Stmt::ClassDef(c) => {
                assert_eq!(c.name, "A");
                assert_eq!(c.bases, vec!["B".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_imports() {
        let p = parse("import torch.nn as nn, numpy\nfrom torch.optim import SGD as S, Adam\n")
            .unwrap();
        match &p.body[0] {
            Stmt::Import { items } => {
                assert_eq!(items[0].module, "torch.nn");
                assert_eq!(items[0].alias.as_deref(), Some("nn"));
                assert_eq!(items[1].module, "numpy");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.body[1] {
            Stmt::FromImport { module, names } => {
                assert_eq!(module, "torch.optim");
                assert_eq!(names[0], ("SGD".into(), Some("S".into())));
                assert_eq!(names[1], ("Adam".into(), None));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_from_import() {
        let p = parse("from m import (\n    a,\n    b,\n)\n").unwrap();
        match &p.body[0] {
            Stmt::FromImport { names, .. } => assert_eq!(names.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_elif_else() {
        let p = parse("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n").unwrap();
        match &p.body[0] {
            Stmt::If { branches, orelse } => {
                assert_eq!(branches.len(), 2);
                assert_eq!(orelse.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_try_except_finally() {
        let src = "try:\n    f()\nexcept AttributeError as e:\n    g(e)\nexcept:\n    h()\nfinally:\n    k()\n";
        let p = parse(src).unwrap();
        match &p.body[0] {
            Stmt::Try {
                handlers,
                finalbody,
                ..
            } => {
                assert_eq!(handlers.len(), 2);
                assert_eq!(handlers[0].exc_type.as_deref(), Some("AttributeError"));
                assert_eq!(handlers[0].name.as_deref(), Some("e"));
                assert!(handlers[1].exc_type.is_none());
                assert_eq!(finalbody.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_calls_with_kwargs() {
        let p = parse("f(1, x=2, y=g(3))\n").unwrap();
        match &p.body[0] {
            Stmt::Expr(Expr::Call { args, kwargs, .. }) => {
                assert_eq!(args.len(), 1);
                assert_eq!(kwargs.len(), 2);
                assert_eq!(kwargs[0].0, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_chained_attribute_calls() {
        let p = parse("torch.nn.Linear(2, 1)\n").unwrap();
        match &p.body[0] {
            Stmt::Expr(Expr::Call { func, .. }) => {
                assert!(matches!(**func, Expr::Attribute { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_comparison_chain_and_membership() {
        let p = parse("r = 1 < x <= 10 and y in z and w not in v\n").unwrap();
        assert!(matches!(&p.body[0], Stmt::Assign { .. }));
    }

    #[test]
    fn parses_conditional_expression() {
        let p = parse("x = a if cond else b\n").unwrap();
        match &p.body[0] {
            Stmt::Assign { value, .. } => assert!(matches!(value, Expr::Conditional { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_single_line_suite() {
        let p = parse("if x: return 1\n").unwrap();
        match &p.body[0] {
            Stmt::If { branches, .. } => assert_eq!(branches[0].1.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(parse("1 + 2 = x\n").is_err());
    }

    #[test]
    fn rejects_unclosed_paren() {
        assert!(parse("f(1, 2\n").is_err());
    }

    #[test]
    fn unparse_roundtrip_program() {
        let src = "import torch\nfrom torch.nn import Linear, MSELoss\nx = torch.tensor([1.0, 2.0])\ndef handler(event, context):\n    if event[\"n\"] > 1:\n        return x\n    return None\nclass Model(Base):\n    def __init__(self, dim):\n        self.dim = dim\n";
        let p1 = parse(src).unwrap();
        let out = unparse(&p1);
        let p2 = parse(&out).unwrap();
        assert_eq!(p1, p2, "unparse output must reparse to an equal AST");
    }

    #[test]
    fn parse_expr_accepts_single_expression() {
        let e = parse_expr("{\"x\": [1, 2, 3]}").unwrap();
        assert!(matches!(e, Expr::Dict(_)));
        assert!(parse_expr("1 2").is_err());
    }

    #[test]
    fn parses_aug_assign_variants() {
        let p = parse("x += 1\ny -= 2\nz *= 3\nw /= 4\n").unwrap();
        assert_eq!(p.body.len(), 4);
        assert!(p.body.iter().all(|s| matches!(s, Stmt::AugAssign { .. })));
    }

    #[test]
    fn parses_del_and_global_and_assert() {
        let p = parse("global a, b\nassert x > 0, \"boom\"\ndel obj.attr\n").unwrap();
        assert!(matches!(&p.body[0], Stmt::Global(v) if v.len() == 2));
        assert!(matches!(&p.body[1], Stmt::Assert { msg: Some(_), .. }));
        assert!(matches!(&p.body[2], Stmt::Del(Expr::Attribute { .. })));
    }

    #[test]
    fn parses_nested_collections() {
        let p = parse("cfg = {\"layers\": [64, 32], \"opts\": {\"lr\": 0.1}}\n").unwrap();
        assert!(matches!(&p.body[0], Stmt::Assign { .. }));
    }

    #[test]
    fn adjacent_string_literals_concatenate() {
        let e = parse_expr("\"a\" \"b\"").unwrap();
        assert_eq!(e, Expr::Str("ab".into()));
    }
}
