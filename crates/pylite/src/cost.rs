//! The virtual cost model: a deterministic clock and simulated memory
//! accountant.
//!
//! Real CPython burns wall-clock time executing module top-levels and
//! allocates real memory for the objects those statements create. pylite
//! replaces both with *virtual* meters so that every experiment in the
//! repository is deterministic: executing a statement advances the virtual
//! clock by a fixed per-node cost, creating an object charges the simulated
//! heap, and heavyweight native work (the C extensions of torch/numpy/…)
//! is modeled by the `__lt_work__` / `__lt_alloc__` intrinsics that the
//! synthetic library corpus emits.

/// Nanoseconds of virtual time, the base unit of the simulated clock.
pub type VirtualNs = u64;

/// Bytes of simulated heap.
pub type SimBytes = u64;

/// Tunable constants of the virtual cost model.
///
/// The defaults are calibrated so that the synthetic benchmark corpus
/// reproduces the latency/memory magnitudes of Table 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost of dispatching one statement.
    pub stmt_ns: VirtualNs,
    /// Cost per expression AST node evaluated.
    pub expr_node_ns: VirtualNs,
    /// Extra cost of a user-function call (frame setup).
    pub call_ns: VirtualNs,
    /// Extra cost of resolving and starting a module import (finder/loader
    /// overhead, independent of the module body).
    pub import_ns: VirtualNs,
    /// Simulated bytes charged per namespace binding (a dict entry).
    pub binding_bytes: SimBytes,
    /// Simulated bytes per function object plus per body statement.
    pub func_base_bytes: SimBytes,
    /// Additional bytes per statement in a function body (code object size).
    pub func_stmt_bytes: SimBytes,
    /// Simulated bytes per class object.
    pub class_base_bytes: SimBytes,
    /// Simulated bytes per module object (sys.modules entry, loader state).
    pub module_base_bytes: SimBytes,
    /// Bytes charged per element of list/tuple/dict displays.
    pub element_bytes: SimBytes,
    /// Bytes charged for a string per character.
    pub str_char_bytes: SimBytes,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            stmt_ns: 1_500,
            expr_node_ns: 300,
            call_ns: 2_000,
            import_ns: 250_000,
            binding_bytes: 464,
            func_base_bytes: 1_232,
            func_stmt_bytes: 640,
            class_base_bytes: 2_064,
            module_base_bytes: 49_152,
            element_bytes: 64,
            str_char_bytes: 1,
        }
    }
}

/// Accumulated virtual time and simulated memory for one interpreter.
///
/// The meter only ever moves forward: simulated memory is a high-water
/// account — serverless billing charges for the configured memory, which
/// must cover the peak footprint, so releases are irrelevant to the model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Meter {
    clock_ns: VirtualNs,
    mem_bytes: SimBytes,
    /// Number of statements executed (for diagnostics and step limits).
    pub steps: u64,
}

impl Meter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual clock in nanoseconds.
    pub fn clock_ns(&self) -> VirtualNs {
        self.clock_ns
    }

    /// Current virtual clock in (fractional) seconds.
    pub fn clock_secs(&self) -> f64 {
        self.clock_ns as f64 / 1e9
    }

    /// Current simulated memory in bytes.
    pub fn mem_bytes(&self) -> SimBytes {
        self.mem_bytes
    }

    /// Current simulated memory in (fractional) megabytes.
    pub fn mem_mb(&self) -> f64 {
        self.mem_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Advance the clock.
    pub fn tick(&mut self, ns: VirtualNs) {
        self.clock_ns = self.clock_ns.saturating_add(ns);
    }

    /// Charge simulated memory.
    pub fn alloc(&mut self, bytes: SimBytes) {
        self.mem_bytes = self.mem_bytes.saturating_add(bytes);
    }

    /// A snapshot of `(clock_ns, mem_bytes)`, used by import hooks to compute
    /// marginal deltas exactly as §5.2 of the paper describes.
    pub fn snapshot(&self) -> (VirtualNs, SimBytes) {
        (self.clock_ns, self.mem_bytes)
    }
}

/// Convert milliseconds (possibly fractional) to virtual nanoseconds.
pub fn ms_to_ns(ms: f64) -> VirtualNs {
    if ms <= 0.0 {
        return 0;
    }
    (ms * 1e6).round() as VirtualNs
}

/// Convert megabytes (possibly fractional) to simulated bytes.
pub fn mb_to_bytes(mb: f64) -> SimBytes {
    if mb <= 0.0 {
        return 0;
    }
    (mb * 1024.0 * 1024.0).round() as SimBytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_starts_at_zero() {
        let m = Meter::new();
        assert_eq!(m.clock_ns(), 0);
        assert_eq!(m.mem_bytes(), 0);
    }

    #[test]
    fn tick_and_alloc_accumulate() {
        let mut m = Meter::new();
        m.tick(100);
        m.tick(50);
        m.alloc(1024);
        assert_eq!(m.clock_ns(), 150);
        assert_eq!(m.mem_bytes(), 1024);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(ms_to_ns(1.0), 1_000_000);
        assert_eq!(ms_to_ns(0.5), 500_000);
        assert_eq!(ms_to_ns(-3.0), 0);
        assert_eq!(mb_to_bytes(1.0), 1024 * 1024);
        assert_eq!(mb_to_bytes(-1.0), 0);
    }

    #[test]
    fn clock_secs_and_mem_mb() {
        let mut m = Meter::new();
        m.tick(2_500_000_000);
        m.alloc(3 * 1024 * 1024);
        assert!((m.clock_secs() - 2.5).abs() < 1e-9);
        assert!((m.mem_mb() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_behaviour() {
        let mut m = Meter::new();
        m.tick(u64::MAX);
        m.tick(10);
        assert_eq!(m.clock_ns(), u64::MAX);
    }
}
