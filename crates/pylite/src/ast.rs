//! Abstract syntax tree for pylite programs, plus an `unparse` pretty-printer.
//!
//! The AST is deliberately close to CPython's `ast` module for the constructs
//! λ-trim manipulates: top-level statements define module *attributes*
//! (functions, classes, assignments, imports, from-imports), which is the
//! debloating granularity of §6.1 of the paper.

use std::fmt::Write as _;

/// A parsed module: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements in program order.
    pub body: Vec<Stmt>,
}

/// One `import` clause: `import module` or `import module as alias`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportItem {
    /// Dotted module path, e.g. `torch.nn`.
    pub module: String,
    /// Optional `as` alias.
    pub alias: Option<String>,
}

impl ImportItem {
    /// The name this import binds in the importing namespace: the alias if
    /// present, otherwise the *first* component of the dotted path (CPython
    /// semantics for `import a.b`).
    pub fn bound_name(&self) -> &str {
        match &self.alias {
            Some(a) => a,
            None => self.module.split('.').next().expect("nonempty module path"),
        }
    }
}

/// An `except` clause of a `try` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptHandler {
    /// Exception class name to match, or `None` for a bare `except:`.
    pub exc_type: Option<String>,
    /// Binding introduced by `as name`.
    pub name: Option<String>,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// A function parameter with an optional default expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Default value, evaluated at definition time.
    pub default: Option<Expr>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name (the module/class attribute it binds).
    pub name: String,
    /// Positional parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Base class names (resolved at definition time).
    pub bases: Vec<String>,
    /// Class body (its bindings become class attributes).
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `target = value` (possibly chained: `a = b = value`).
    Assign {
        /// Assignment targets (Name / Attribute / Subscript expressions).
        targets: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
    },
    /// `target op= value`.
    AugAssign {
        /// Target (Name / Attribute / Subscript).
        target: Expr,
        /// The binary operator combined with assignment.
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if`/`elif` chain with optional `else`.
    If {
        /// `(condition, body)` pairs, first is `if`, rest are `elif`.
        branches: Vec<(Expr, Vec<Stmt>)>,
        /// `else` body (possibly empty).
        orelse: Vec<Stmt>,
    },
    /// `while test: body`.
    While {
        /// Loop condition.
        test: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for targets in iter: body`.
    For {
        /// Loop variable names (tuple-unpacked when more than one).
        targets: Vec<String>,
        /// Iterable expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `def name(params): body`.
    FuncDef(FuncDef),
    /// `class name(bases): body`.
    ClassDef(ClassDef),
    /// `return [expr]`.
    Return(Option<Expr>),
    /// `pass`.
    Pass,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `import a.b [as c][, ...]`.
    Import {
        /// The imported modules.
        items: Vec<ImportItem>,
    },
    /// `from module import name [as alias][, ...]`.
    FromImport {
        /// Dotted source module.
        module: String,
        /// `(name, alias)` pairs.
        names: Vec<(String, Option<String>)>,
    },
    /// `raise [expr]`.
    Raise(Option<Expr>),
    /// `try` / `except` / `else` / `finally`.
    Try {
        /// Protected body.
        body: Vec<Stmt>,
        /// Exception handlers, tried in order.
        handlers: Vec<ExceptHandler>,
        /// `else` body, run if no exception was raised.
        orelse: Vec<Stmt>,
        /// `finally` body, always run.
        finalbody: Vec<Stmt>,
    },
    /// `global name, ...` — marks names as module-global inside a function.
    Global(Vec<String>),
    /// `assert test[, msg]`.
    Assert {
        /// Condition that must hold.
        test: Expr,
        /// Optional failure message.
        msg: Option<Expr>,
    },
    /// `del target` (Name or Attribute).
    Del(Expr),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical negation `not x`.
    Not,
    /// Unary plus `+x`.
    Pos,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
}

impl BinOp {
    /// Source text for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in`
    In,
    /// `not in`
    NotIn,
    /// `is`
    Is,
    /// `is not`
    IsNot,
}

impl CmpOp {
    /// Source text for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
            CmpOp::Is => "is",
            CmpOp::IsNot => "is not",
        }
    }
}

/// Boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOp {
    /// `and` (short-circuiting).
    And,
    /// `or` (short-circuiting).
    Or,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `None` literal.
    None,
    /// `True` literal.
    True,
    /// `False` literal.
    False,
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Identifier reference.
    Name(String),
    /// List display `[a, b]`.
    List(Vec<Expr>),
    /// Tuple display `(a, b)`.
    Tuple(Vec<Expr>),
    /// Dict display `{k: v}`.
    Dict(Vec<(Expr, Expr)>),
    /// Attribute access `value.attr`.
    Attribute {
        /// Object expression.
        value: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// Subscript `value[index]`.
    Subscript {
        /// Container expression.
        value: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Call `func(args, kw=..)`.
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary arithmetic.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `a and b and c` / `a or b`.
    Bool {
        /// Connective.
        op: BoolOp,
        /// Operands (≥ 2).
        values: Vec<Expr>,
    },
    /// Chained comparison `a < b <= c`.
    Compare {
        /// Leftmost operand.
        left: Box<Expr>,
        /// `(op, operand)` pairs.
        ops: Vec<(CmpOp, Expr)>,
    },
    /// Conditional expression `body if test else orelse`.
    Conditional {
        /// Condition.
        test: Box<Expr>,
        /// Value when true.
        body: Box<Expr>,
        /// Value when false.
        orelse: Box<Expr>,
    },
    /// List comprehension `[element for targets in iter if cond]`.
    ListComp {
        /// Element expression.
        element: Box<Expr>,
        /// Loop variable names (tuple-unpacked when more than one).
        targets: Vec<String>,
        /// Iterable expression.
        iter: Box<Expr>,
        /// Optional filter condition.
        cond: Option<Box<Expr>>,
    },
    /// Slice `value[start:stop]` (either bound may be omitted).
    Slice {
        /// The sequence being sliced.
        value: Box<Expr>,
        /// Inclusive start index.
        start: Option<Box<Expr>>,
        /// Exclusive stop index.
        stop: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Count of AST nodes in this expression (used by the cost model).
    pub fn node_count(&self) -> usize {
        let mut n = 1;
        match self {
            Expr::List(items) | Expr::Tuple(items) => {
                n += items.iter().map(Expr::node_count).sum::<usize>();
            }
            Expr::Dict(pairs) => {
                n += pairs
                    .iter()
                    .map(|(k, v)| k.node_count() + v.node_count())
                    .sum::<usize>();
            }
            Expr::Attribute { value, .. } => n += value.node_count(),
            Expr::Subscript { value, index } => n += value.node_count() + index.node_count(),
            Expr::Call { func, args, kwargs } => {
                n += func.node_count();
                n += args.iter().map(Expr::node_count).sum::<usize>();
                n += kwargs.iter().map(|(_, v)| v.node_count()).sum::<usize>();
            }
            Expr::Unary { operand, .. } => n += operand.node_count(),
            Expr::Binary { left, right, .. } => n += left.node_count() + right.node_count(),
            Expr::Bool { values, .. } => {
                n += values.iter().map(Expr::node_count).sum::<usize>();
            }
            Expr::Compare { left, ops } => {
                n += left.node_count();
                n += ops.iter().map(|(_, e)| e.node_count()).sum::<usize>();
            }
            Expr::Conditional { test, body, orelse } => {
                n += test.node_count() + body.node_count() + orelse.node_count();
            }
            Expr::ListComp {
                element,
                iter,
                cond,
                ..
            } => {
                n += element.node_count() + iter.node_count();
                if let Some(c) = cond {
                    n += c.node_count();
                }
            }
            Expr::Slice { value, start, stop } => {
                n += value.node_count();
                if let Some(e) = start {
                    n += e.node_count();
                }
                if let Some(e) = stop {
                    n += e.node_count();
                }
            }
            _ => {}
        }
        n
    }
}

/// Count of statement nodes in a statement list, recursively.
pub fn stmt_count(body: &[Stmt]) -> usize {
    body.iter().map(single_stmt_count).sum()
}

fn single_stmt_count(stmt: &Stmt) -> usize {
    1 + match stmt {
        Stmt::If { branches, orelse } => {
            branches.iter().map(|(_, b)| stmt_count(b)).sum::<usize>() + stmt_count(orelse)
        }
        Stmt::While { body, .. } | Stmt::For { body, .. } => stmt_count(body),
        Stmt::FuncDef(f) => stmt_count(&f.body),
        Stmt::ClassDef(c) => stmt_count(&c.body),
        Stmt::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            stmt_count(body)
                + handlers.iter().map(|h| stmt_count(&h.body)).sum::<usize>()
                + stmt_count(orelse)
                + stmt_count(finalbody)
        }
        _ => 0,
    }
}

// ---------------------------------------------------------------------------
// Unparser
// ---------------------------------------------------------------------------

/// Render a program back to pylite source text.
///
/// The output re-parses to an equal AST (`parse(unparse(p)) == p`), which the
/// rewriter's property tests rely on.
pub fn unparse(program: &Program) -> String {
    let mut out = String::new();
    for stmt in &program.body {
        write_stmt(&mut out, stmt, 0);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_body(out: &mut String, body: &[Stmt], level: usize) {
    if body.is_empty() {
        indent(out, level);
        out.push_str("pass\n");
    } else {
        for stmt in body {
            write_stmt(out, stmt, level);
        }
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{}", expr_src(e));
        }
        Stmt::Assign { targets, value } => {
            for t in targets {
                let _ = write!(out, "{} = ", expr_src(t));
            }
            let _ = writeln!(out, "{}", expr_src(value));
        }
        Stmt::AugAssign { target, op, value } => {
            let _ = writeln!(
                out,
                "{} {}= {}",
                expr_src(target),
                op.symbol(),
                expr_src(value)
            );
        }
        Stmt::If { branches, orelse } => {
            for (i, (test, body)) in branches.iter().enumerate() {
                if i > 0 {
                    indent(out, level);
                }
                let kw = if i == 0 { "if" } else { "elif" };
                let _ = writeln!(out, "{kw} {}:", expr_src(test));
                write_body(out, body, level + 1);
            }
            if !orelse.is_empty() {
                indent(out, level);
                out.push_str("else:\n");
                write_body(out, orelse, level + 1);
            }
        }
        Stmt::While { test, body } => {
            let _ = writeln!(out, "while {}:", expr_src(test));
            write_body(out, body, level + 1);
        }
        Stmt::For {
            targets,
            iter,
            body,
        } => {
            let _ = writeln!(out, "for {} in {}:", targets.join(", "), expr_src(iter));
            write_body(out, body, level + 1);
        }
        Stmt::FuncDef(f) => {
            let params: Vec<String> = f
                .params
                .iter()
                .map(|p| match &p.default {
                    Some(d) => format!("{}={}", p.name, expr_src(d)),
                    None => p.name.clone(),
                })
                .collect();
            let _ = writeln!(out, "def {}({}):", f.name, params.join(", "));
            write_body(out, &f.body, level + 1);
        }
        Stmt::ClassDef(c) => {
            if c.bases.is_empty() {
                let _ = writeln!(out, "class {}:", c.name);
            } else {
                let _ = writeln!(out, "class {}({}):", c.name, c.bases.join(", "));
            }
            write_body(out, &c.body, level + 1);
        }
        Stmt::Return(None) => out.push_str("return\n"),
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {}", expr_src(e));
        }
        Stmt::Pass => out.push_str("pass\n"),
        Stmt::Break => out.push_str("break\n"),
        Stmt::Continue => out.push_str("continue\n"),
        Stmt::Import { items } => {
            let rendered: Vec<String> = items
                .iter()
                .map(|i| match &i.alias {
                    Some(a) => format!("{} as {a}", i.module),
                    None => i.module.clone(),
                })
                .collect();
            let _ = writeln!(out, "import {}", rendered.join(", "));
        }
        Stmt::FromImport { module, names } => {
            let rendered: Vec<String> = names
                .iter()
                .map(|(n, a)| match a {
                    Some(a) => format!("{n} as {a}"),
                    None => n.clone(),
                })
                .collect();
            let _ = writeln!(out, "from {module} import {}", rendered.join(", "));
        }
        Stmt::Raise(None) => out.push_str("raise\n"),
        Stmt::Raise(Some(e)) => {
            let _ = writeln!(out, "raise {}", expr_src(e));
        }
        Stmt::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            out.push_str("try:\n");
            write_body(out, body, level + 1);
            for h in handlers {
                indent(out, level);
                match (&h.exc_type, &h.name) {
                    (Some(t), Some(n)) => {
                        let _ = writeln!(out, "except {t} as {n}:");
                    }
                    (Some(t), None) => {
                        let _ = writeln!(out, "except {t}:");
                    }
                    _ => out.push_str("except:\n"),
                }
                write_body(out, &h.body, level + 1);
            }
            if !orelse.is_empty() {
                indent(out, level);
                out.push_str("else:\n");
                write_body(out, orelse, level + 1);
            }
            if !finalbody.is_empty() {
                indent(out, level);
                out.push_str("finally:\n");
                write_body(out, finalbody, level + 1);
            }
        }
        Stmt::Global(names) => {
            let _ = writeln!(out, "global {}", names.join(", "));
        }
        Stmt::Assert { test, msg } => match msg {
            Some(m) => {
                let _ = writeln!(out, "assert {}, {}", expr_src(test), expr_src(m));
            }
            None => {
                let _ = writeln!(out, "assert {}", expr_src(test));
            }
        },
        Stmt::Del(e) => {
            let _ = writeln!(out, "del {}", expr_src(e));
        }
    }
}

/// Render an expression to source text (fully parenthesized where needed).
pub fn expr_src(e: &Expr) -> String {
    match e {
        Expr::None => "None".into(),
        Expr::True => "True".into(),
        Expr::False => "False".into(),
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            let s = v.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Str(s) => format!("{s:?}"),
        Expr::Name(n) => n.clone(),
        Expr::List(items) => format!(
            "[{}]",
            items.iter().map(expr_src).collect::<Vec<_>>().join(", ")
        ),
        Expr::Tuple(items) => {
            if items.len() == 1 {
                format!("({},)", expr_src(&items[0]))
            } else {
                format!(
                    "({})",
                    items.iter().map(expr_src).collect::<Vec<_>>().join(", ")
                )
            }
        }
        Expr::Dict(pairs) => format!(
            "{{{}}}",
            pairs
                .iter()
                .map(|(k, v)| format!("{}: {}", expr_src(k), expr_src(v)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Expr::Attribute { value, attr } => format!("{}.{attr}", atom_src(value)),
        Expr::Subscript { value, index } => {
            format!("{}[{}]", atom_src(value), expr_src(index))
        }
        Expr::Call { func, args, kwargs } => {
            let mut parts: Vec<String> = args.iter().map(expr_src).collect();
            parts.extend(kwargs.iter().map(|(k, v)| format!("{k}={}", expr_src(v))));
            format!("{}({})", atom_src(func), parts.join(", "))
        }
        Expr::Unary { op, operand } => match op {
            UnaryOp::Neg => format!("-{}", atom_src(operand)),
            UnaryOp::Pos => format!("+{}", atom_src(operand)),
            UnaryOp::Not => format!("not {}", atom_src(operand)),
        },
        Expr::Binary { left, op, right } => {
            format!("({} {} {})", expr_src(left), op.symbol(), expr_src(right))
        }
        Expr::Bool { op, values } => {
            let sep = match op {
                BoolOp::And => " and ",
                BoolOp::Or => " or ",
            };
            format!(
                "({})",
                values.iter().map(expr_src).collect::<Vec<_>>().join(sep)
            )
        }
        Expr::Compare { left, ops } => {
            let mut s = format!("({}", expr_src(left));
            for (op, operand) in ops {
                let _ = write!(s, " {} {}", op.symbol(), expr_src(operand));
            }
            s.push(')');
            s
        }
        Expr::Conditional { test, body, orelse } => format!(
            "({} if {} else {})",
            expr_src(body),
            expr_src(test),
            expr_src(orelse)
        ),
        Expr::ListComp {
            element,
            targets,
            iter,
            cond,
        } => {
            let mut s = format!(
                "[{} for {} in {}",
                expr_src(element),
                targets.join(", "),
                expr_src(iter)
            );
            if let Some(c) = cond {
                let _ = write!(s, " if {}", expr_src(c));
            }
            s.push(']');
            s
        }
        Expr::Slice { value, start, stop } => format!(
            "{}[{}:{}]",
            atom_src(value),
            start.as_deref().map(expr_src).unwrap_or_default(),
            stop.as_deref().map(expr_src).unwrap_or_default()
        ),
    }
}

/// Like [`expr_src`] but parenthesizes non-atomic expressions so the result
/// can be used as the base of an attribute access / call / subscript.
fn atom_src(e: &Expr) -> String {
    match e {
        Expr::None
        | Expr::True
        | Expr::False
        | Expr::Int(_)
        | Expr::Str(_)
        | Expr::Name(_)
        | Expr::List(_)
        | Expr::Tuple(_)
        | Expr::Dict(_)
        | Expr::Attribute { .. }
        | Expr::Subscript { .. }
        | Expr::Call { .. } => expr_src(e),
        _ => format!("({})", expr_src(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_name_of_dotted_import_is_first_component() {
        let item = ImportItem {
            module: "torch.nn".into(),
            alias: None,
        };
        assert_eq!(item.bound_name(), "torch");
    }

    #[test]
    fn bound_name_prefers_alias() {
        let item = ImportItem {
            module: "torch.nn".into(),
            alias: Some("nn".into()),
        };
        assert_eq!(item.bound_name(), "nn");
    }

    #[test]
    fn unparse_simple_function() {
        let p = Program {
            body: vec![Stmt::FuncDef(FuncDef {
                name: "f".into(),
                params: vec![Param {
                    name: "x".into(),
                    default: None,
                }],
                body: vec![Stmt::Return(Some(Expr::Name("x".into())))],
            })],
        };
        assert_eq!(unparse(&p), "def f(x):\n    return x\n");
    }

    #[test]
    fn unparse_empty_bodies_become_pass() {
        let p = Program {
            body: vec![Stmt::ClassDef(ClassDef {
                name: "C".into(),
                bases: vec![],
                body: vec![],
            })],
        };
        assert_eq!(unparse(&p), "class C:\n    pass\n");
    }

    #[test]
    fn node_count_is_recursive() {
        let e = Expr::Binary {
            left: Box::new(Expr::Int(1)),
            op: BinOp::Add,
            right: Box::new(Expr::Int(2)),
        };
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn stmt_count_descends_into_nested_blocks() {
        let p = Program {
            body: vec![Stmt::If {
                branches: vec![(Expr::True, vec![Stmt::Pass, Stmt::Pass])],
                orelse: vec![Stmt::Pass],
            }],
        };
        assert_eq!(stmt_count(&p.body), 4);
    }

    #[test]
    fn float_unparse_keeps_float_syntax() {
        assert_eq!(expr_src(&Expr::Float(2.0)), "2.0");
        assert_eq!(expr_src(&Expr::Float(1.5)), "1.5");
    }
}
