//! Init-snapshot memoization: record/replay of module top-level execution.
//!
//! Every DD probe is a full oracle run, and consecutive probes differ by a
//! handful of keep-set entries — so the bulk of each probe's time is spent
//! re-executing identical module initializations. This module records what
//! one module's init *produced* (final namespaces of its freshly-imported
//! subtree, emitted stdout/extcall lines, `ImportEvent`s, observed-access
//! pairs, and the exact meter delta) as an [`InitSnapshot`], keyed by the
//! content fingerprints of the module and its transitive import cone. A
//! later probe whose cone is unchanged *replays* the snapshot — rebuilding
//! the namespace values from a flat arena (fresh `Rc`s every replay, so no
//! copy-on-write guards are needed), re-emitting the recorded effects in
//! order, and ticking the recorded meter delta — byte-identical to live
//! execution.
//!
//! Safety comes from three conservative gates applied at record time:
//!
//! 1. **No pre-frame imports.** If the module (or anything in its subtree)
//!    import-cache-hits a module loaded before the recording frame began,
//!    the frame is violated: the subtree closed over state the snapshot
//!    cannot reproduce.
//! 2. **No foreign-namespace writes.** Writes into a module namespace that
//!    predates the frame (via `setattr`, attribute assignment, `del`, or a
//!    `global` declaration in a function called during init) violate every
//!    frame the target predates.
//! 3. **Walkable values only.** The capture walk bails on bound methods,
//!    reference cycles, functions whose globals belong to no module in the
//!    subtree, and modules outside the subtree. Unwalkable modules are
//!    negative-cached by content fingerprint so later probes skip the
//!    recording overhead.
//!
//! On top, the pipeline seeds a **deny set** from the static analyzer's
//! hazard facts (opaque getattr, foreign mutation through aliases), routing
//! statically-suspicious modules to live execution without ever recording.
//! Structural soundness (index bounds, kind agreement) is [`validate`]d
//! once when an entry enters the store — so replay itself is infallible —
//! and the one remaining replay-time inconsistency (recording-order
//! mismatch) *poisons* the entry: it is dropped and the import falls back
//! to live execution.
//!
//! Replay is *lazy*: [`rehydrate`] builds only module shells, and each
//! shell's namespace materializes bindings on demand ([`LazyModuleNs`]) —
//! single bindings on attribute lookup, everything on iteration-style
//! access. A shared per-replay arena memo keeps aliasing exact no matter
//! which module forces first, so a probe pays O(modules) up front plus
//! only the bindings it actually touches — the same asymmetry (most
//! attributes unused) that makes debloating worthwhile in the first place.

use crate::cost::CostModel;
use crate::intern::Symbol;
use crate::resolved::RFuncDef;
use crate::value::{
    Builtin, ExcKind, ModuleObj, Namespace, PyClass, PyErr, PyFunc, PyInstance, Value,
};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum snapshot variants retained per module name (FIFO eviction).
/// Different probes rewrite different import cones, so a module can have a
/// few live (module_fp, deps) keys at once; beyond that, old cones are
/// stale probes not worth keeping.
const MAX_VARIANTS: usize = 4;

/// A scalar or reference cell of captured namespace state.
///
/// References point either at a module of the captured subtree (by closure
/// index) or at a heap node in the snapshot's arena (by arena index), so
/// aliasing and sharing among captured values is preserved exactly on
/// replay.
#[derive(Debug, Clone)]
pub(crate) enum SnapValue {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Immutable string (shared allocation).
    Str(Arc<str>),
    /// Builtin function handle.
    Builtin(Builtin),
    /// Builtin exception class.
    ExcClass(ExcKind),
    /// Exception instance (plain data; identity is unobservable).
    Exc(Box<PyErr>),
    /// Opaque simulated allocation.
    Blob(u64),
    /// Reference to the `i`-th module of the captured subtree.
    Module(u32),
    /// Reference to an arena node.
    Node(u32),
}

/// A heap object in the snapshot arena. Children always have smaller arena
/// indices than their parents (the capture walk is post-order and bails on
/// cycles), so replay can rebuild the arena in one forward pass.
#[derive(Debug, Clone)]
pub(crate) enum SnapNode {
    /// A mutable list.
    List(Vec<SnapValue>),
    /// An immutable tuple (identity preserved: `is` compares tuples by Rc).
    Tuple(Vec<SnapValue>),
    /// A dict (association list, insertion-ordered).
    Dict(Vec<(SnapValue, SnapValue)>),
    /// A function object.
    Func {
        /// Shared resolved definition.
        code: Arc<RFuncDef>,
        /// Definition-time default values.
        defaults: Vec<Option<SnapValue>>,
        /// Closure index of the module whose globals the function closes over.
        globals: u32,
        /// Dotted name of the defining module.
        module: Arc<str>,
    },
    /// A class object.
    Class {
        /// Class name.
        name: String,
        /// Arena indices of base classes (each must be a `Class` node).
        bases: Vec<u32>,
        /// Class namespace in insertion order.
        ns: Vec<(Symbol, SnapValue)>,
        /// Whether the class derives from `Exception`.
        is_exception: bool,
    },
    /// An instance of a user-defined class.
    Instance {
        /// Arena index of the class (must be a `Class` node).
        class: u32,
        /// Instance namespace in insertion order.
        ns: Vec<(Symbol, SnapValue)>,
    },
}

/// The final namespace of one module in the captured subtree.
#[derive(Debug, Clone)]
pub(crate) struct SnapModule {
    /// Dotted module name.
    pub(crate) name: String,
    /// The name as an interned symbol (valid within the registry family
    /// that owns the store).
    pub(crate) name_sym: Symbol,
    /// Namespace bindings in insertion order (includes `__name__`,
    /// `__file__`).
    pub(crate) bindings: Vec<(Symbol, SnapValue)>,
}

/// One recorded observable effect, replayed in order.
#[derive(Debug, Clone)]
pub(crate) enum SnapEvent {
    /// A `print` line.
    Stdout(String),
    /// An `__lt_extcall__` log line.
    Extcall(String),
    /// A nested module's `ImportEvent`.
    Import {
        /// Dotted module name.
        module: String,
        /// Import depth relative to the recording frame (≥ 1).
        rel_depth: usize,
        /// The nested import's own marginal virtual time.
        time_ns: u64,
        /// The nested import's own marginal simulated memory.
        mem_bytes: u64,
    },
    /// An observed module-attribute access `(module, attr)`.
    Access(Symbol, Symbol),
}

/// A recorded module initialization: everything `import_module` produced
/// for one module and the modules freshly loaded underneath it.
#[derive(Debug, Clone)]
pub struct InitSnapshot {
    /// Content fingerprint of the module itself.
    pub(crate) module_fp: u64,
    /// Content fingerprints of every module in the captured subtree
    /// (including the module itself) — the import cone's kept surface.
    pub(crate) deps: Vec<(String, u64)>,
    /// The cost model the recording ran under (replay requires equality).
    pub(crate) cost: CostModel,
    /// Virtual-clock delta of the whole init (body + nested imports).
    pub(crate) time_ns: u64,
    /// Simulated-memory delta of the whole init.
    pub(crate) mem_bytes: u64,
    /// Statement-step delta of the whole init.
    pub(crate) steps: u64,
    /// Observable effects in emission order.
    pub(crate) log: Vec<SnapEvent>,
    /// Captured modules in load order; index 0 is the module itself.
    pub(crate) modules: Vec<SnapModule>,
    /// Shared heap objects referenced by the module namespaces.
    pub(crate) arena: Vec<SnapNode>,
}

/// Counters describing how the snapshot cache behaved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Imports answered by replaying a snapshot.
    pub hits: u64,
    /// Fresh imports of registry modules that had no valid snapshot.
    pub misses: u64,
    /// Snapshots recorded.
    pub captures: u64,
    /// Entries dropped because replay found them inconsistent.
    pub poisons: u64,
    /// Capture walks abandoned (unwalkable values), negative-cached.
    pub ineligible: u64,
}

/// The shared init-snapshot cache, living in the [`crate::Registry`] next
/// to the resolved-IR and bytecode slots and shared by every clone and
/// copy-on-write overlay of the registry family.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    entries: Mutex<HashMap<String, Vec<Arc<InitSnapshot>>>>,
    deny: Mutex<HashSet<String>>,
    negative: Mutex<HashSet<(String, u64)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    captures: AtomicU64,
    poisons: AtomicU64,
    ineligible: AtomicU64,
}

impl SnapshotStore {
    /// A fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// All retained snapshot variants for `name` (newest last).
    pub(crate) fn candidates(&self, name: &str) -> Vec<Arc<InitSnapshot>> {
        self.entries
            .lock()
            .expect("snapshot entries")
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Insert a freshly-recorded snapshot, deduplicating by key and
    /// evicting the oldest variant beyond [`MAX_VARIANTS`]. Structurally
    /// unsound snapshots (see [`validate`]) are rejected here — lazy
    /// materialization has no fallback, so only vetted entries may enter.
    pub(crate) fn insert(&self, name: &str, snap: InitSnapshot) {
        if !validate(&snap) {
            debug_assert!(false, "capture built an unsound snapshot for {name}");
            return;
        }
        let mut entries = self.entries.lock().expect("snapshot entries");
        let slot = entries.entry(name.to_owned()).or_default();
        if slot
            .iter()
            .any(|e| e.module_fp == snap.module_fp && e.deps == snap.deps && e.cost == snap.cost)
        {
            return;
        }
        slot.push(Arc::new(snap));
        if slot.len() > MAX_VARIANTS {
            slot.remove(0);
        }
        self.captures.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop a stored entry that replay found internally inconsistent.
    pub(crate) fn poison(&self, name: &str, entry: &Arc<InitSnapshot>) {
        let mut entries = self.entries.lock().expect("snapshot entries");
        if let Some(slot) = entries.get_mut(name) {
            let before = slot.len();
            slot.retain(|e| !Arc::ptr_eq(e, entry));
            if slot.len() < before {
                self.poisons.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Permanently route `name` to live execution (conservative gate fed by
    /// the static analyzer's hazard facts).
    pub fn deny(&self, name: &str) {
        self.deny
            .lock()
            .expect("snapshot deny")
            .insert(name.to_owned());
    }

    /// Whether `name` is routed to live execution.
    pub fn is_denied(&self, name: &str) -> bool {
        self.deny.lock().expect("snapshot deny").contains(name)
    }

    /// Remember that `name` at content fingerprint `fp` produced an
    /// unwalkable namespace, so future frames skip the capture walk.
    pub(crate) fn mark_ineligible(&self, name: &str, fp: u64) {
        self.ineligible.fetch_add(1, Ordering::Relaxed);
        self.negative
            .lock()
            .expect("snapshot negative")
            .insert((name.to_owned(), fp));
    }

    /// Whether `(name, fp)` is known-unwalkable.
    pub(crate) fn is_ineligible(&self, name: &str, fp: u64) -> bool {
        self.negative
            .lock()
            .expect("snapshot negative")
            .contains(&(name.to_owned(), fp))
    }

    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            captures: self.captures.load(Ordering::Relaxed),
            poisons: self.poisons.load(Ordering::Relaxed),
            ineligible: self.ineligible.load(Ordering::Relaxed),
        }
    }

    /// Number of snapshot variants currently retained across all modules.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("snapshot entries")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The capture walk: converts the final namespaces of a captured subtree
/// into the flat [`SnapValue`]/[`SnapNode`] arena form.
///
/// Returns `None` from any method when it encounters a value a snapshot
/// cannot reproduce — the whole capture is then abandoned.
pub(crate) struct SnapshotBuilder {
    arena: Vec<SnapNode>,
    memo: HashMap<usize, u32>,
    in_progress: HashSet<usize>,
    closure_ptrs: Vec<usize>,
    closure_ns: Vec<Namespace>,
}

impl SnapshotBuilder {
    /// A builder over the captured subtree's modules, in load order.
    pub(crate) fn new(closure: &[Rc<ModuleObj>]) -> Self {
        SnapshotBuilder {
            arena: Vec::new(),
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            closure_ptrs: closure.iter().map(|m| Rc::as_ptr(m) as usize).collect(),
            closure_ns: closure.iter().map(|m| m.ns.clone()).collect(),
        }
    }

    /// The finished arena.
    pub(crate) fn finish(self) -> Vec<SnapNode> {
        self.arena
    }

    /// Capture one module's namespace bindings in insertion order.
    pub(crate) fn snap_module(&mut self, m: &ModuleObj) -> Option<SnapModule> {
        let mut bindings = Vec::with_capacity(m.ns.len());
        for sym in m.ns.key_syms() {
            let v = m.ns.get(sym)?;
            bindings.push((sym, self.snap_value(&v)?));
        }
        Some(SnapModule {
            name: m.name.clone(),
            name_sym: m.name_sym,
            bindings,
        })
    }

    fn push(&mut self, node: SnapNode) -> Option<u32> {
        let idx = u32::try_from(self.arena.len()).ok()?;
        self.arena.push(node);
        Some(idx)
    }

    fn snap_class(&mut self, c: &Rc<PyClass>) -> Option<u32> {
        let key = Rc::as_ptr(c) as usize;
        if let Some(&idx) = self.memo.get(&key) {
            return Some(idx);
        }
        if !self.in_progress.insert(key) {
            return None; // reference cycle
        }
        let mut bases = Vec::with_capacity(c.bases.len());
        for b in &c.bases {
            bases.push(self.snap_class(b)?);
        }
        let mut ns = Vec::with_capacity(c.ns.len());
        for sym in c.ns.key_syms() {
            let v = c.ns.get(sym)?;
            ns.push((sym, self.snap_value(&v)?));
        }
        self.in_progress.remove(&key);
        let idx = self.push(SnapNode::Class {
            name: c.name.clone(),
            bases,
            ns,
            is_exception: c.is_exception,
        })?;
        self.memo.insert(key, idx);
        Some(idx)
    }

    /// Capture one value; `None` means the value is not snapshot-safe.
    pub(crate) fn snap_value(&mut self, v: &Value) -> Option<SnapValue> {
        match v {
            Value::None => Some(SnapValue::None),
            Value::Bool(b) => Some(SnapValue::Bool(*b)),
            Value::Int(i) => Some(SnapValue::Int(*i)),
            Value::Float(f) => Some(SnapValue::Float(*f)),
            Value::Str(s) => Some(SnapValue::Str(Arc::clone(s))),
            Value::Builtin(b) => Some(SnapValue::Builtin(*b)),
            Value::ExcClass(k) => Some(SnapValue::ExcClass(k.clone())),
            Value::ExcValue(e) => Some(SnapValue::Exc(Box::new((**e).clone()))),
            Value::Blob(n) => Some(SnapValue::Blob(*n)),
            Value::Module(m) => {
                let key = Rc::as_ptr(m) as usize;
                let idx = self.closure_ptrs.iter().position(|&p| p == key)?;
                Some(SnapValue::Module(idx as u32))
            }
            Value::List(l) => {
                let key = Rc::as_ptr(l) as *const u8 as usize;
                if let Some(&idx) = self.memo.get(&key) {
                    return Some(SnapValue::Node(idx));
                }
                if !self.in_progress.insert(key) {
                    return None;
                }
                let mut items = Vec::with_capacity(l.borrow().len());
                for item in l.borrow().iter() {
                    items.push(self.snap_value(item)?);
                }
                self.in_progress.remove(&key);
                let idx = self.push(SnapNode::List(items))?;
                self.memo.insert(key, idx);
                Some(SnapValue::Node(idx))
            }
            Value::Tuple(t) => {
                let key = Rc::as_ptr(t) as *const u8 as usize;
                if let Some(&idx) = self.memo.get(&key) {
                    return Some(SnapValue::Node(idx));
                }
                if !self.in_progress.insert(key) {
                    return None;
                }
                let mut items = Vec::with_capacity(t.len());
                for item in t.iter() {
                    items.push(self.snap_value(item)?);
                }
                self.in_progress.remove(&key);
                let idx = self.push(SnapNode::Tuple(items))?;
                self.memo.insert(key, idx);
                Some(SnapValue::Node(idx))
            }
            Value::Dict(d) => {
                let key = Rc::as_ptr(d) as *const u8 as usize;
                if let Some(&idx) = self.memo.get(&key) {
                    return Some(SnapValue::Node(idx));
                }
                if !self.in_progress.insert(key) {
                    return None;
                }
                let mut pairs = Vec::with_capacity(d.borrow().len());
                for (k, v) in d.borrow().iter() {
                    pairs.push((self.snap_value(k)?, self.snap_value(v)?));
                }
                self.in_progress.remove(&key);
                let idx = self.push(SnapNode::Dict(pairs))?;
                self.memo.insert(key, idx);
                Some(SnapValue::Node(idx))
            }
            Value::Func(f) => {
                let key = Rc::as_ptr(f) as usize;
                if let Some(&idx) = self.memo.get(&key) {
                    return Some(SnapValue::Node(idx));
                }
                let globals = self.closure_ns.iter().position(|ns| ns.same(&f.globals))? as u32;
                if !self.in_progress.insert(key) {
                    return None;
                }
                let mut defaults = Vec::with_capacity(f.defaults.len());
                for d in &f.defaults {
                    defaults.push(match d {
                        Some(v) => Some(self.snap_value(v)?),
                        None => None,
                    });
                }
                self.in_progress.remove(&key);
                let idx = self.push(SnapNode::Func {
                    code: Arc::clone(&f.code),
                    defaults,
                    globals,
                    module: Arc::from(&*f.module),
                })?;
                self.memo.insert(key, idx);
                Some(SnapValue::Node(idx))
            }
            Value::Class(c) => self.snap_class(c).map(SnapValue::Node),
            Value::Instance(i) => {
                let key = Rc::as_ptr(i) as *const u8 as usize;
                if let Some(&idx) = self.memo.get(&key) {
                    return Some(SnapValue::Node(idx));
                }
                if !self.in_progress.insert(key) {
                    return None;
                }
                let inst = i.borrow();
                let class = self.snap_class(&inst.class)?;
                let mut ns = Vec::with_capacity(inst.ns.len());
                for sym in inst.ns.key_syms() {
                    let v = inst.ns.get(sym)?;
                    ns.push((sym, self.snap_value(&v)?));
                }
                drop(inst);
                self.in_progress.remove(&key);
                let idx = self.push(SnapNode::Instance { class, ns })?;
                self.memo.insert(key, idx);
                Some(SnapValue::Node(idx))
            }
            // Bound methods capture a receiver identity that replay cannot
            // tie back to its aliases; both are rare at module top level.
            Value::BoundMethod { .. } | Value::NativeMethod { .. } => None,
        }
    }
}

/// Structural soundness of a snapshot: every reference a replay resolves
/// is in range and of the kind resolution expects — arena children
/// strictly before their parents, class references to `Class` nodes,
/// module references inside the captured closure. The store checks this
/// once at insert time; it is what lets materialization run infallibly
/// later, mid-interpretation, where no live fallback exists anymore.
pub(crate) fn validate(snap: &InitSnapshot) -> bool {
    let nmods = snap.modules.len() as u32;
    if nmods == 0 {
        return false;
    }
    // `limit` is how far into the arena a value may point: nodes only at
    // earlier nodes, module bindings (resolved after the whole arena)
    // anywhere.
    let ok_sv = |sv: &SnapValue, limit: u32| match sv {
        SnapValue::Module(i) => *i < nmods,
        SnapValue::Node(i) => *i < limit,
        _ => true,
    };
    let is_class =
        |i: u32, limit: u32| i < limit && matches!(snap.arena[i as usize], SnapNode::Class { .. });
    for (idx, node) in snap.arena.iter().enumerate() {
        let limit = idx as u32;
        let ok = match node {
            SnapNode::List(items) | SnapNode::Tuple(items) => {
                items.iter().all(|sv| ok_sv(sv, limit))
            }
            SnapNode::Dict(pairs) => pairs
                .iter()
                .all(|(k, v)| ok_sv(k, limit) && ok_sv(v, limit)),
            SnapNode::Func {
                defaults, globals, ..
            } => *globals < nmods && defaults.iter().flatten().all(|sv| ok_sv(sv, limit)),
            SnapNode::Class { bases, ns, .. } => {
                bases.iter().all(|b| is_class(*b, limit))
                    && ns.iter().all(|(_, sv)| ok_sv(sv, limit))
            }
            SnapNode::Instance { class, ns } => {
                is_class(*class, limit) && ns.iter().all(|(_, sv)| ok_sv(sv, limit))
            }
        };
        if !ok {
            return false;
        }
    }
    let arena_len = snap.arena.len() as u32;
    snap.modules
        .iter()
        .all(|sm| sm.bindings.iter().all(|(_, sv)| ok_sv(sv, arena_len)))
}

/// Per-replay materialization state: the arena memo and module shells one
/// replayed cone resolves against. Shared (via `Rc`) by the cone's
/// deferred namespaces; each namespace drops its handle when forced, so
/// the context and memo free once everything has materialized.
#[derive(Debug)]
struct ReplayCtx {
    snap: Arc<InitSnapshot>,
    /// Memoized arena values: aliasing among bindings is preserved even
    /// when modules force at different times.
    nodes: RefCell<Vec<Option<Value>>>,
    /// The cone's module shells. Weak because shells reach this context
    /// through their own deferred namespaces — the interpreter's module
    /// table (or any binding holding the shell) keeps them alive for as
    /// long as forcing can still happen.
    shells: Vec<std::rc::Weak<ModuleObj>>,
    /// One shared name allocation per module (every function carries its
    /// defining module's name).
    names: RefCell<Vec<Option<Rc<str>>>>,
}

impl ReplayCtx {
    fn shell(&self, i: u32) -> Rc<ModuleObj> {
        self.shells[i as usize]
            .upgrade()
            .expect("replayed module shell outlived its interpreter")
    }

    fn module_name(&self, i: u32, dotted: &Arc<str>) -> Rc<str> {
        let mut names = self.names.borrow_mut();
        let slot = &mut names[i as usize];
        match slot {
            Some(rc) if **rc == **dotted => Rc::clone(rc),
            _ => {
                let rc: Rc<str> = Rc::from(&**dotted);
                *slot = Some(Rc::clone(&rc));
                rc
            }
        }
    }

    fn resolve(&self, sv: &SnapValue) -> Value {
        match sv {
            SnapValue::None => Value::None,
            SnapValue::Bool(b) => Value::Bool(*b),
            SnapValue::Int(i) => Value::Int(*i),
            SnapValue::Float(f) => Value::Float(*f),
            SnapValue::Str(s) => Value::Str(Arc::clone(s)),
            SnapValue::Builtin(b) => Value::Builtin(*b),
            SnapValue::ExcClass(k) => Value::ExcClass(k.clone()),
            SnapValue::Exc(e) => Value::ExcValue(Rc::new((**e).clone())),
            SnapValue::Blob(n) => Value::Blob(*n),
            SnapValue::Module(i) => Value::Module(self.shell(*i)),
            SnapValue::Node(i) => self.node(*i as usize),
        }
    }

    fn resolve_ns(&self, pairs: &[(Symbol, SnapValue)]) -> Namespace {
        // Captured from an `NsMap` iteration, so keys are unique: the
        // single-probe insert is safe and the exact capacity avoids
        // rehashing.
        let ns = Namespace::with_capacity(pairs.len());
        for (sym, sv) in pairs {
            ns.insert_new(*sym, self.resolve(sv));
        }
        ns
    }

    /// The `i`-th arena node's value, built on first request. Children
    /// have strictly smaller indices (checked by [`validate`] at insert),
    /// so the recursion terminates.
    fn node(&self, i: usize) -> Value {
        {
            let memo = self.nodes.borrow();
            if let Some(v) = &memo[i] {
                return v.clone();
            }
        }
        let v = match &self.snap.arena[i] {
            SnapNode::List(items) => Value::list(items.iter().map(|sv| self.resolve(sv)).collect()),
            SnapNode::Tuple(items) => {
                Value::tuple(items.iter().map(|sv| self.resolve(sv)).collect())
            }
            SnapNode::Dict(pairs) => Value::dict(
                pairs
                    .iter()
                    .map(|(k, v)| (self.resolve(k), self.resolve(v)))
                    .collect(),
            ),
            SnapNode::Func {
                code,
                defaults,
                globals,
                module,
            } => {
                let owner = self.shell(*globals);
                let d = defaults
                    .iter()
                    .map(|dv| dv.as_ref().map(|sv| self.resolve(sv)))
                    .collect();
                Value::Func(Rc::new(PyFunc {
                    code: Arc::clone(code),
                    defaults: d,
                    globals: owner.ns.clone(),
                    module: self.module_name(*globals, module),
                }))
            }
            SnapNode::Class {
                name,
                bases,
                ns,
                is_exception,
            } => {
                let base_classes = bases
                    .iter()
                    .map(|b| match self.node(*b as usize) {
                        Value::Class(c) => c,
                        _ => unreachable!("validated at insert: class bases are Class nodes"),
                    })
                    .collect();
                Value::Class(Rc::new(PyClass {
                    name: name.clone(),
                    bases: base_classes,
                    ns: self.resolve_ns(ns),
                    is_exception: *is_exception,
                }))
            }
            SnapNode::Instance { class, ns } => {
                let class = match self.node(*class as usize) {
                    Value::Class(c) => c,
                    _ => unreachable!("validated at insert: instance class is a Class node"),
                };
                Value::Instance(Rc::new(RefCell::new(PyInstance {
                    class,
                    ns: self.resolve_ns(ns),
                })))
            }
        };
        self.nodes.borrow_mut()[i] = Some(v.clone());
        v
    }
}

/// Deferred contents of one replayed module's namespace.
#[derive(Debug)]
struct LazyModuleNs {
    ctx: Rc<ReplayCtx>,
    idx: usize,
}

impl crate::value::LazyBindings for LazyModuleNs {
    fn fill(&self) -> Vec<(Symbol, Value)> {
        let sm = &self.ctx.snap.modules[self.idx];
        sm.bindings
            .iter()
            .map(|(sym, sv)| (*sym, self.ctx.resolve(sv)))
            .collect()
    }

    fn get(&self, key: Symbol) -> Option<Value> {
        let sm = &self.ctx.snap.modules[self.idx];
        sm.bindings
            .iter()
            .find(|(sym, _)| *sym == key)
            .map(|(_, sv)| self.ctx.resolve(sv))
    }

    fn contains(&self, key: Symbol) -> bool {
        let sm = &self.ctx.snap.modules[self.idx];
        sm.bindings.iter().any(|(sym, _)| *sym == key)
    }
}

/// Rebuild the captured subtree's module objects from a snapshot.
///
/// Only the module *shells* are constructed eagerly — each namespace's
/// bindings materialize on first access, so a probe that never reads a
/// replayed module never builds its values. This is where replay beats
/// re-execution: live init pays for every binding, replay only for the
/// touched ones. Materialization builds fresh `Rc`s per replay
/// (intra-snapshot aliasing is preserved through the shared arena memo;
/// cross-replay sharing is impossible), so forced state is
/// indistinguishable from live execution. Requires a store-vetted
/// snapshot (see [`validate`]); resolution itself cannot fault.
pub(crate) fn rehydrate(snap: &Arc<InitSnapshot>) -> Vec<Rc<ModuleObj>> {
    let shells: Vec<Rc<ModuleObj>> = snap
        .modules
        .iter()
        .map(|sm| {
            Rc::new(ModuleObj {
                name: sm.name.clone(),
                name_sym: sm.name_sym,
                tracked: true,
                ns: Namespace::new(),
            })
        })
        .collect();
    let ctx = Rc::new(ReplayCtx {
        snap: Arc::clone(snap),
        nodes: RefCell::new(vec![None; snap.arena.len()]),
        shells: shells.iter().map(Rc::downgrade).collect(),
        names: RefCell::new(vec![None; shells.len()]),
    });
    for (idx, shell) in shells.iter().enumerate() {
        shell.ns.defer_to(Rc::new(LazyModuleNs {
            ctx: Rc::clone(&ctx),
            idx,
        }));
    }
    shells
}

/// One observable effect in the recording log, shared flat across nested
/// frames (a frame's slice is `log[frame.log_start..]` at pop time).
#[derive(Debug, Clone)]
pub(crate) enum LogEvent {
    /// A `print` line.
    Stdout(String),
    /// An `__lt_extcall__` line.
    Extcall(String),
    /// A nested `ImportEvent` at its absolute import depth.
    Import {
        /// Dotted module name.
        module: String,
        /// Absolute import depth at emission.
        depth: usize,
        /// Marginal virtual time.
        time_ns: u64,
        /// Marginal simulated memory.
        mem_bytes: u64,
    },
    /// An observed `(module, attr)` access.
    Access(Symbol, Symbol),
}

/// One active recording frame: a fresh `import_module` body execution.
#[derive(Debug)]
pub(crate) struct SnapFrame {
    /// The module whose init this frame records.
    pub(crate) module: String,
    /// Load sequence number of the module itself; modules with
    /// `load_seq >= start_seq` were loaded within the frame.
    pub(crate) start_seq: u64,
    /// Start of this frame's slice of the shared log.
    pub(crate) log_start: usize,
    /// Import depth at frame creation (nested events are ≥ this + 1).
    pub(crate) base_depth: usize,
    /// Virtual clock at frame start.
    pub(crate) clock_start: u64,
    /// Simulated memory at frame start.
    pub(crate) mem_start: u64,
    /// Step counter at frame start.
    pub(crate) steps_start: u64,
    /// Whether a pre-frame import or foreign write invalidated the frame.
    pub(crate) violated: bool,
    /// `(module, attr)` accesses already logged within this frame. A lazy
    /// module shell first touched via attribute lookup and later fully
    /// materialized via namespace iteration (star import) would otherwise
    /// record the touched binding twice; the log dedupes at record time.
    /// Observed-access *sets* are dedup-invariant, so replay is unchanged.
    pub(crate) seen: HashSet<(Symbol, Symbol)>,
}

/// Per-interpreter recording state, present only when init snapshots are
/// enabled ([`crate::Interpreter::enable_init_snapshots`]).
#[derive(Debug, Default)]
pub(crate) struct SnapRecorder {
    /// Stack of active recording frames (one per in-flight fresh import).
    pub(crate) frames: Vec<SnapFrame>,
    /// Flat effect log shared by all active frames.
    pub(crate) log: Vec<LogEvent>,
    /// Load sequence number per loaded module name.
    pub(crate) load_seq: HashMap<String, u64>,
    /// Next sequence number (starts at 1 so a missing entry sorts pre-frame).
    pub(crate) next_seq: u64,
}

impl SnapRecorder {
    pub(crate) fn new() -> Self {
        SnapRecorder {
            frames: Vec::new(),
            log: Vec::new(),
            load_seq: HashMap::new(),
            next_seq: 1,
        }
    }

    /// Assign the next load sequence number to `name`.
    pub(crate) fn note_load(&mut self, name: &str) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.load_seq.insert(name.to_owned(), seq);
        seq
    }

    /// Forget a module removed after a failed import.
    pub(crate) fn note_unload(&mut self, name: &str) {
        self.load_seq.remove(name);
    }

    /// Mark every frame that predates `name`'s load as violated (the frame
    /// closed over — or wrote into — state it cannot reproduce).
    pub(crate) fn mark_pre_frame(&mut self, name: &str) {
        if self.frames.is_empty() {
            return;
        }
        let seq = self.load_seq.get(name).copied().unwrap_or(0);
        for f in &mut self.frames {
            if seq < f.start_seq {
                f.violated = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    fn snap(fp: u64, deps: Vec<(String, u64)>) -> InitSnapshot {
        // One empty module keeps the snapshot structurally valid (the
        // store rejects unsound entries at insert).
        InitSnapshot {
            module_fp: fp,
            deps,
            cost: CostModel::default(),
            time_ns: 1,
            mem_bytes: 2,
            steps: 3,
            log: Vec::new(),
            modules: vec![SnapModule {
                name: "m".into(),
                name_sym: Interner::new().intern("m"),
                bindings: Vec::new(),
            }],
            arena: Vec::new(),
        }
    }

    #[test]
    fn store_insert_dedups_and_evicts_fifo() {
        let store = SnapshotStore::new();
        store.insert("m", snap(1, vec![("m".into(), 1)]));
        store.insert("m", snap(1, vec![("m".into(), 1)]));
        assert_eq!(store.len(), 1, "identical keys deduplicate");
        for fp in 2..=6 {
            store.insert("m", snap(fp, vec![("m".into(), fp)]));
        }
        assert_eq!(store.len(), MAX_VARIANTS);
        let fps: Vec<u64> = store.candidates("m").iter().map(|e| e.module_fp).collect();
        assert_eq!(fps, vec![3, 4, 5, 6], "oldest variants evicted first");
        assert_eq!(store.stats().captures, 6);
    }

    #[test]
    fn store_poison_removes_by_identity() {
        let store = SnapshotStore::new();
        store.insert("m", snap(1, vec![("m".into(), 1)]));
        store.insert("m", snap(2, vec![("m".into(), 2)]));
        let victim = store.candidates("m")[0].clone();
        store.poison("m", &victim);
        assert_eq!(store.len(), 1);
        assert_eq!(store.candidates("m")[0].module_fp, 2);
        assert_eq!(store.stats().poisons, 1);
        // Poisoning again is a no-op.
        store.poison("m", &victim);
        assert_eq!(store.stats().poisons, 1);
    }

    #[test]
    fn store_deny_and_negative_sets() {
        let store = SnapshotStore::new();
        assert!(!store.is_denied("m"));
        store.deny("m");
        assert!(store.is_denied("m"));
        assert!(!store.is_ineligible("n", 7));
        store.mark_ineligible("n", 7);
        assert!(store.is_ineligible("n", 7));
        assert!(!store.is_ineligible("n", 8));
        assert_eq!(store.stats().ineligible, 1);
    }

    #[test]
    fn validate_rejects_out_of_bounds_references() {
        let interner = Interner::new();
        let sym = interner.intern("x");
        let mut s = snap(1, vec![("m".into(), 1)]);
        assert!(validate(&s), "helper snapshot is sound");
        s.modules.push(SnapModule {
            name: "n".into(),
            name_sym: interner.intern("n"),
            bindings: vec![(sym, SnapValue::Node(0))],
        });
        assert!(!validate(&s), "binding references a missing arena node");
        // Arena nodes may only reference earlier nodes.
        let mut fwd = snap(2, vec![("m".into(), 2)]);
        fwd.arena.push(SnapNode::List(vec![SnapValue::Node(0)]));
        assert!(!validate(&fwd), "self/forward arena reference");
        // Class bases must point at Class nodes.
        let mut base = snap(3, vec![("m".into(), 3)]);
        base.arena.push(SnapNode::List(Vec::new()));
        base.arena.push(SnapNode::Class {
            name: "C".into(),
            bases: vec![0],
            ns: Vec::new(),
            is_exception: false,
        });
        assert!(!validate(&base), "base class is not a Class node");
    }

    #[test]
    fn rehydrate_preserves_aliasing_and_defers_until_access() {
        let interner = Interner::new();
        let (a, b, m) = (
            interner.intern("a"),
            interner.intern("b"),
            interner.intern("m"),
        );
        let mut s = snap(1, vec![("m".into(), 1)]);
        s.arena.push(SnapNode::List(vec![SnapValue::Int(1)]));
        s.modules.push(SnapModule {
            name: "n".into(),
            name_sym: m,
            bindings: vec![(a, SnapValue::Node(0)), (b, SnapValue::Node(0))],
        });
        assert!(validate(&s));
        let modules = rehydrate(&Arc::new(s));
        // Aliasing within one replay is preserved through the arena memo
        // even though materialization is lazy.
        let (va, vb) = (modules[1].ns.get(a).unwrap(), modules[1].ns.get(b).unwrap());
        match (va, vb) {
            (Value::List(x), Value::List(y)) => assert!(Rc::ptr_eq(&x, &y)),
            other => panic!("expected aliased lists, got {other:?}"),
        }
    }

    #[test]
    fn rehydrate_twice_shares_nothing() {
        let interner = Interner::new();
        let a = interner.intern("a");
        let mut s = snap(1, vec![("m".into(), 1)]);
        s.arena.push(SnapNode::List(vec![SnapValue::Int(7)]));
        s.modules[0].bindings.push((a, SnapValue::Node(0)));
        let snap = Arc::new(s);
        let one = rehydrate(&snap);
        let two = rehydrate(&snap);
        match (one[0].ns.get(a).unwrap(), two[0].ns.get(a).unwrap()) {
            (Value::List(x), Value::List(y)) => {
                assert!(!Rc::ptr_eq(&x, &y), "replays must not share mutable state")
            }
            other => panic!("expected lists, got {other:?}"),
        }
    }

    #[test]
    fn recorder_marks_pre_frame_modules() {
        let mut r = SnapRecorder::new();
        r.note_load("old");
        let seq = r.note_load("self");
        r.frames.push(SnapFrame {
            module: "self".into(),
            start_seq: seq,
            log_start: 0,
            base_depth: 0,
            clock_start: 0,
            mem_start: 0,
            steps_start: 0,
            violated: false,
            seen: HashSet::new(),
        });
        r.mark_pre_frame("self");
        assert!(!r.frames[0].violated, "own load is intra-frame");
        r.mark_pre_frame("old");
        assert!(r.frames[0].violated, "pre-frame module violates");
        let mut r2 = SnapRecorder::new();
        let seq2 = r2.note_load("self");
        r2.frames.push(SnapFrame {
            module: "self".into(),
            start_seq: seq2,
            log_start: 0,
            base_depth: 0,
            clock_start: 0,
            mem_start: 0,
            steps_start: 0,
            violated: false,
            seen: HashSet::new(),
        });
        r2.mark_pre_frame("__main__");
        assert!(r2.frames[0].violated, "unknown names sort pre-frame");
    }

    #[test]
    fn frame_access_log_dedupes_lookup_then_star_import() {
        // `pkg` touches `lib.x` via attribute lookup and then fully
        // materializes lib's namespace via a star import. Pre-dedupe, the
        // recording frame logged the touched binding twice.
        let mut r = crate::Registry::new();
        r.set_module("lib", "x = 1\ny = 2\n");
        r.set_module("pkg", "import lib\na = lib.x\nfrom lib import *\n");
        let mut it = crate::Interpreter::new(r.clone());
        it.enable_init_snapshots();
        it.exec_main("import pkg\n").unwrap();
        let store = r.snapshot_store();
        let entry = store
            .candidates("pkg")
            .into_iter()
            .next()
            .expect("pkg init captured");
        let lib = r.interner().intern("lib");
        let (x, y) = (r.interner().intern("x"), r.interner().intern("y"));
        let count = |attr: Symbol| {
            entry
                .log
                .iter()
                .filter(|ev| matches!(ev, SnapEvent::Access(m, a) if *m == lib && *a == attr))
                .count()
        };
        assert_eq!(count(x), 1, "double-touched binding logs exactly once");
        assert_eq!(count(y), 1, "star-only binding still logs once");

        // Replay must reproduce the same observed-access set as live.
        let mut live = crate::Interpreter::new(r.clone());
        live.exec_main("import pkg\n").unwrap();
        let mut replayed = crate::Interpreter::new(r.clone());
        replayed.enable_init_snapshots();
        replayed.exec_main("import pkg\n").unwrap();
        assert!(r.snapshot_store().stats().hits > 0, "second run replays");
        assert_eq!(replayed.observed_accesses(), live.observed_accesses());
    }
}
