//! Compact bytecode tier for the pylite interpreter.
//!
//! Every Delta-Debugging probe is a full oracle run, so interpreter speed
//! multiplies the throughput of the whole λ-trim pipeline. The resolved IR
//! ([`crate::resolved`]) removed name hashing from the hot path; this
//! module removes the tree walk itself. A one-time compile pass flattens
//! each module body (and, lazily, each function body) into [`CodeObj`]s:
//! straight-line instruction arrays with constant / string / keyword-name
//! pools and pre-computed intra-block jump targets, executed by a tight
//! dispatch loop over an operand stack.
//!
//! Design rules (see DESIGN.md §12):
//!
//! - **Byte-identical semantics.** The tree-walker stays available as
//!   [`crate::Engine::Tree`] and is the behavioral reference: stdout,
//!   exceptions, meter ticks, simulated allocations, observed accesses and
//!   namespace contents must match exactly. Per-node `expr_node_ns` ticks
//!   are preserved by *merging* adjacent entry ticks into [`Insn::Tick`]
//!   (or into the leading [`Insn::StmtTick`]) — exact because the meter is
//!   a saturating counter and ticks are flushed before every instruction
//!   that can raise, allocate, or snapshot the meter.
//! - **Cold constructs delegate.** Definition-time work (function
//!   defaults, class bodies), imports and `del` run through the *same*
//!   `pub(crate)` interpreter helpers the tree-walker uses, so the two
//!   tiers cannot drift on rare paths; only hot statement/expression
//!   dispatch is compiled.
//! - **Shared caching.** Module bodies are compiled once per registry
//!   *family* into a `OnceLock` slot next to the resolved IR (COW clones
//!   share it; fingerprints stay content-based). Function bodies compile
//!   lazily into a slot on [`RFuncDef`] shared by every `PyFunc` closed
//!   over the definition.
//! - **Inline caches carry over.** `mod.attr` sites keep their resolved-IR
//!   site ids, so the generation-checked inline caches (DESIGN.md §8) and
//!   the per-site hit/miss counters work identically under both engines.

use crate::ast::{BinOp, BoolOp, CmpOp, UnaryOp};
use crate::intern::Symbol;
use crate::resolved::{RClassDef, RExpr, RFromName, RFuncDef, RImportItem, RProgram, RStmt};
use std::sync::Arc;

/// Sentinel block id for "no block" (empty `else` / `finally`, no cond).
const NO_BLOCK: u32 = u32::MAX;
/// Sentinel keyword-pool id for calls without keyword arguments.
const NO_KW: u32 = u32::MAX;

/// A literal from the constant pool. Only scalar payloads, so [`CodeObj`]
/// stays `Send + Sync` and can live in the shared registry slots.
#[derive(Debug, Clone, Copy)]
enum Const {
    None,
    True,
    False,
    Int(i64),
    Float(f64),
}

/// One bytecode instruction. Jump operands are instruction indexes within
/// the *same* block; pool operands index the owning [`CodeObj`]'s pools.
#[derive(Debug, Clone)]
enum Insn {
    /// Statement prologue: bump the step counter, enforce the step limit,
    /// tick `stmt_ns` plus `extra` merged `expr_node_ns` entry ticks.
    StmtTick { extra: u32 },
    /// Tick `n` merged `expr_node_ns` expression-entry costs.
    Tick(u32),
    /// Per-iteration while-loop step: bump and enforce the step limit.
    LoopStep,
    /// Push a scalar from the constant pool.
    Const(u32),
    /// Push a string literal (charges `str_char_bytes` per char).
    Str(u32),
    /// Push the value of a name (locals → globals → builtins).
    LoadName(Symbol),
    /// Pop a value and bind it to a name.
    StoreName(Symbol),
    /// Pop and discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Pop `n` elements, push a list (charges `element_bytes * n`).
    MakeList(u32),
    /// Pop `n` elements, push a tuple (charges `element_bytes * n`).
    MakeTuple(u32),
    /// Pop `2n` elements (k/v interleaved), push a dict.
    MakeDict(u32),
    /// Pop an object, push `obj.attr` through the inline-cache site.
    LoadAttr { attr: Symbol, site: u32 },
    /// Pop an object, pop a value, store `obj.attr = value`.
    StoreAttr(Symbol),
    /// Pop index and object, push `obj[index]`.
    LoadItem,
    /// Pop index, object and value, store `obj[index] = value`.
    StoreItem,
    /// Pop optional bounds and the value, push `value[start:stop]`.
    Slice { has_start: bool, has_stop: bool },
    /// Pop a value, push the unary-operator result.
    Unary(UnaryOp),
    /// Pop right then left, push the binary-operator result.
    Binary(BinOp),
    /// Pop right then left, push the boolean comparison result.
    Compare(CmpOp),
    /// One link of a chained comparison: pop right then left; on success
    /// push right (the next link's left), else push `False` and jump.
    CmpChain { op: CmpOp, fail: u32 },
    /// Pop keyword values, `argc` positional args and the callee; push
    /// the call result. `kw` indexes the keyword-name pool or [`NO_KW`].
    Call { argc: u32, kw: u32 },
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    PopJumpIfFalse(u32),
    /// Pop; jump when truthy.
    PopJumpIfTrue(u32),
    /// `and`: jump (keeping the value) when falsy, else pop.
    JumpIfFalseOrPop(u32),
    /// `or`: jump (keeping the value) when truthy, else pop.
    JumpIfTrueOrPop(u32),
    /// Pop an iterable, snapshot its values onto the iterator stack.
    ForSetup,
    /// Bind the next item to the loop targets, or pop the iterator and
    /// jump to `end` when exhausted.
    ForNext { targets: u32, end: u32 },
    /// `break` inside a `for`: pop the iterator, jump past the loop.
    PopIterJump(u32),
    /// Run a list comprehension over the popped iterable.
    ListComp(u32),
    /// Define a function (defaults evaluate via the shared tree helper).
    DefFunc(u32),
    /// Define a class (body executes via the shared tree helper).
    DefClass(u32),
    /// Run an `import` clause list via the shared interpreter helper.
    Import(u32),
    /// Run a `from module import ...` via the shared interpreter helper.
    FromImport(u32),
    /// Run a `del target` via the shared interpreter helper.
    Del(u32),
    /// Declare a name `global` in the current environment.
    Global(Symbol),
    /// Pop the return value and unwind with it.
    Return,
    /// Unwind returning `None`.
    ReturnNone,
    /// Propagate `break` out of this block (loop lives in an outer block).
    BreakFlow,
    /// Propagate `continue` out of this block.
    ContinueFlow,
    /// Pop a value and raise it as an exception.
    Raise,
    /// `raise` with no operand outside an `except` block.
    Reraise,
    /// Assertion failed: pop the optional message and raise.
    AssertRaise { has_msg: bool },
    /// Run a `try` statement (body/handlers/orelse/finally blocks).
    Try(u32),
    /// Pop a value, unpack exactly `n` items (first item on top).
    Unpack(u32),
    /// Non-assignable target in an assignment statement.
    InvalidAssign,
}

/// Where a `break` / `continue` crossing a [`CTry`] resumes in the block
/// that owns the enclosing loop.
#[derive(Debug, Clone, Copy)]
struct LoopExit {
    /// Instruction index to resume at.
    target: u32,
    /// Whether to pop the innermost iterator (for-loops only).
    pop_iter: bool,
}

/// One `except` clause of a compiled `try`.
#[derive(Debug)]
struct CHandler {
    /// Exception class name to match, `None` for bare `except:`.
    exc_type: Option<Box<str>>,
    /// `as name` binding.
    name: Option<Symbol>,
    /// Handler body block.
    body: u32,
}

/// A compiled `try` statement.
#[derive(Debug)]
struct CTry {
    body: u32,
    handlers: Box<[CHandler]>,
    orelse: u32,
    finalbody: u32,
    /// Routing for `break` flowing out of the nested blocks, when the
    /// innermost loop lives in the block that owns this `try`.
    on_break: Option<LoopExit>,
    /// Routing for `continue`, same condition.
    on_continue: Option<u32>,
}

/// A compiled list comprehension.
#[derive(Debug)]
struct CComp {
    targets: Box<[Symbol]>,
    /// Filter-condition expression block, or [`NO_BLOCK`].
    cond: u32,
    /// Element expression block.
    element: u32,
}

/// A compiled unit: one module body or one function body.
///
/// Instruction blocks share the pools; block 0 is the entry. `CodeObj` is
/// `Send + Sync` (pools hold scalars, `Arc` strings and resolved-IR
/// nodes), so it can be cached in the registry's shared family slots and
/// on [`RFuncDef`] like the resolved tree itself.
#[derive(Debug, Default)]
pub struct CodeObj {
    blocks: Vec<Box<[Insn]>>,
    consts: Vec<Const>,
    strs: Vec<Arc<str>>,
    kwnames: Vec<Box<[Symbol]>>,
    funcs: Vec<Arc<RFuncDef>>,
    classes: Vec<RClassDef>,
    imports: Vec<Box<[RImportItem]>>,
    from_imports: Vec<(Box<str>, Box<[RFromName]>)>,
    dels: Vec<RExpr>,
    trys: Vec<CTry>,
    comps: Vec<CComp>,
    for_targets: Vec<Box<[Symbol]>>,
}

/// Compile a resolved module body into a [`CodeObj`] (entry = block 0).
pub fn compile_program(program: &RProgram) -> CodeObj {
    let mut c = Compiler::new();
    c.entry(&program.body);
    c.code
}

/// Compiled bytecode for a function body, compiled on first call and
/// cached on the shared definition node.
pub(crate) fn func_code(def: &Arc<RFuncDef>) -> Arc<CodeObj> {
    Arc::clone(def.compiled.get_or_init(|| {
        let mut c = Compiler::new();
        c.entry(&def.body);
        Arc::new(c.code)
    }))
}

// -- compiler -------------------------------------------------------------

/// Loop context while compiling a loop's body in the same block.
struct LoopCtx {
    /// `true` for `for` (break pops the iterator; continue jumps to the
    /// known head), `false` for `while` (continue patched to `LoopStep`).
    is_for: bool,
    /// Loop-head instruction index (`ForNext` / condition re-test).
    head: u32,
    /// `Jump`/`PopIterJump` placeholders to patch to the loop end.
    break_sites: Vec<usize>,
    /// `Jump` placeholders to patch to the continue target (while only).
    continue_sites: Vec<usize>,
    /// `trys` pool indexes needing `on_break`/`on_continue` routing.
    try_idxs: Vec<usize>,
}

/// Builds one instruction block, merging expression entry ticks.
///
/// `pending` counts `expr_node_ns` ticks owed since the last emitted
/// instruction; they flush as a [`Insn::Tick`] before any instruction
/// that can raise, touch the meter, or transfer control — or merge into
/// an immediately preceding [`Insn::StmtTick`]. `barrier()` additionally
/// runs at every label / jump target so per-iteration ticks can never
/// merge into a once-executed instruction.
struct BlockBuilder {
    insns: Vec<Insn>,
    pending: u32,
    absorb: Option<usize>,
    loops: Vec<LoopCtx>,
}

impl BlockBuilder {
    fn new() -> Self {
        BlockBuilder {
            insns: Vec::new(),
            pending: 0,
            absorb: None,
            loops: Vec::new(),
        }
    }

    /// Record one owed `expr_node_ns` entry tick.
    fn tick(&mut self) {
        self.pending += 1;
    }

    /// Emit owed ticks (merging into a trailing `StmtTick` if possible).
    fn flush(&mut self) {
        if self.pending == 0 {
            return;
        }
        let pending = self.pending;
        self.pending = 0;
        if let Some(at) = self.absorb {
            if at + 1 == self.insns.len() {
                if let Insn::StmtTick { extra } = &mut self.insns[at] {
                    *extra += pending;
                    return;
                }
            }
        }
        self.insns.push(Insn::Tick(pending));
    }

    /// Flush and forbid further merging into earlier instructions. Called
    /// at every label and patch target.
    fn barrier(&mut self) {
        self.flush();
        self.absorb = None;
    }

    /// Current instruction index as a (barriered) label.
    fn here(&mut self) -> u32 {
        self.barrier();
        self.insns.len() as u32
    }

    fn emit(&mut self, i: Insn) {
        self.flush();
        self.absorb = None;
        self.insns.push(i);
    }

    /// Emit a statement prologue eligible to absorb following ticks.
    fn emit_stmt_tick(&mut self) {
        self.flush();
        self.insns.push(Insn::StmtTick { extra: 0 });
        self.absorb = Some(self.insns.len() - 1);
    }

    /// Emit a jump-family instruction and return its site for patching.
    fn emit_jump(&mut self, i: Insn) -> usize {
        self.emit(i);
        self.insns.len() - 1
    }

    /// Patch the jump operand at `site` to `target`.
    fn patch(&mut self, site: usize, target: u32) {
        match &mut self.insns[site] {
            Insn::Jump(t)
            | Insn::PopJumpIfFalse(t)
            | Insn::PopJumpIfTrue(t)
            | Insn::JumpIfFalseOrPop(t)
            | Insn::JumpIfTrueOrPop(t)
            | Insn::PopIterJump(t)
            | Insn::CmpChain { fail: t, .. }
            | Insn::ForNext { end: t, .. } => *t = target,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }
}

struct Compiler {
    code: CodeObj,
}

impl Compiler {
    fn new() -> Self {
        Compiler {
            code: CodeObj::default(),
        }
    }

    /// Compile `stmts` as block 0 of the code object.
    fn entry(&mut self, stmts: &[RStmt]) {
        self.code.blocks.push(Box::from([]));
        let block = self.build_stmts(stmts);
        self.code.blocks[0] = self.code.blocks.remove(block as usize);
    }

    fn build_stmts(&mut self, stmts: &[RStmt]) -> u32 {
        let mut b = BlockBuilder::new();
        for s in stmts {
            self.stmt(&mut b, s);
        }
        b.barrier();
        let id = self.code.blocks.len() as u32;
        self.code.blocks.push(b.insns.into_boxed_slice());
        id
    }

    fn build_expr(&mut self, e: &RExpr) -> u32 {
        let mut b = BlockBuilder::new();
        self.expr(&mut b, e);
        b.barrier();
        let id = self.code.blocks.len() as u32;
        self.code.blocks.push(b.insns.into_boxed_slice());
        id
    }

    fn const_id(&mut self, c: Const) -> u32 {
        self.code.consts.push(c);
        (self.code.consts.len() - 1) as u32
    }

    fn stmt(&mut self, b: &mut BlockBuilder, s: &RStmt) {
        b.emit_stmt_tick();
        match s {
            RStmt::Expr(e) => {
                self.expr(b, e);
                b.emit(Insn::Pop);
            }
            RStmt::Assign { targets, value } => {
                self.expr(b, value);
                let last = targets.len() - 1;
                for (i, t) in targets.iter().enumerate() {
                    if i < last {
                        b.emit(Insn::Dup);
                    }
                    self.store(b, t);
                }
            }
            RStmt::AugAssign { target, op, value } => {
                self.expr(b, target);
                self.expr(b, value);
                b.emit(Insn::Binary(*op));
                self.store(b, target);
            }
            RStmt::If { branches, orelse } => {
                let mut end_sites = Vec::with_capacity(branches.len());
                for (test, body) in branches {
                    self.expr(b, test);
                    let skip = b.emit_jump(Insn::PopJumpIfFalse(0));
                    for s in body {
                        self.stmt(b, s);
                    }
                    end_sites.push(b.emit_jump(Insn::Jump(0)));
                    let next = b.here();
                    b.patch(skip, next);
                }
                for s in orelse {
                    self.stmt(b, s);
                }
                let end = b.here();
                for site in end_sites {
                    b.patch(site, end);
                }
            }
            RStmt::While { test, body } => {
                let head = b.here();
                self.expr(b, test);
                let exit = b.emit_jump(Insn::PopJumpIfFalse(0));
                b.loops.push(LoopCtx {
                    is_for: false,
                    head,
                    break_sites: Vec::new(),
                    continue_sites: Vec::new(),
                    try_idxs: Vec::new(),
                });
                for s in body {
                    self.stmt(b, s);
                }
                let step = b.here();
                b.emit(Insn::LoopStep);
                b.emit(Insn::Jump(head));
                let end = b.here();
                b.patch(exit, end);
                let ctx = b.loops.pop().expect("while ctx");
                for site in ctx.break_sites {
                    b.patch(site, end);
                }
                for site in ctx.continue_sites {
                    b.patch(site, step);
                }
                for t in ctx.try_idxs {
                    self.code.trys[t].on_break = Some(LoopExit {
                        target: end,
                        pop_iter: false,
                    });
                    self.code.trys[t].on_continue = Some(step);
                }
            }
            RStmt::For {
                targets,
                iter,
                body,
            } => {
                self.expr(b, iter);
                b.emit(Insn::ForSetup);
                let head = b.here();
                self.code
                    .for_targets
                    .push(targets.clone().into_boxed_slice());
                let tid = (self.code.for_targets.len() - 1) as u32;
                let next = b.emit_jump(Insn::ForNext {
                    targets: tid,
                    end: 0,
                });
                b.loops.push(LoopCtx {
                    is_for: true,
                    head,
                    break_sites: Vec::new(),
                    continue_sites: Vec::new(),
                    try_idxs: Vec::new(),
                });
                for s in body {
                    self.stmt(b, s);
                }
                b.emit(Insn::Jump(head));
                let end = b.here();
                b.patch(next, end);
                let ctx = b.loops.pop().expect("for ctx");
                for site in ctx.break_sites {
                    b.patch(site, end);
                }
                debug_assert!(ctx.continue_sites.is_empty());
                for t in ctx.try_idxs {
                    self.code.trys[t].on_break = Some(LoopExit {
                        target: end,
                        pop_iter: true,
                    });
                    self.code.trys[t].on_continue = Some(head);
                }
            }
            RStmt::FuncDef(f) => {
                self.code.funcs.push(Arc::clone(f));
                b.emit(Insn::DefFunc((self.code.funcs.len() - 1) as u32));
            }
            RStmt::ClassDef(c) => {
                self.code.classes.push(c.clone());
                b.emit(Insn::DefClass((self.code.classes.len() - 1) as u32));
            }
            RStmt::Return(e) => match e {
                Some(e) => {
                    self.expr(b, e);
                    b.emit(Insn::Return);
                }
                None => b.emit(Insn::ReturnNone),
            },
            RStmt::Pass => {}
            RStmt::Break => match b.loops.last().map(|c| c.is_for) {
                Some(true) => {
                    let site = b.emit_jump(Insn::PopIterJump(0));
                    b.loops.last_mut().expect("loop ctx").break_sites.push(site);
                }
                Some(false) => {
                    let site = b.emit_jump(Insn::Jump(0));
                    b.loops.last_mut().expect("loop ctx").break_sites.push(site);
                }
                None => b.emit(Insn::BreakFlow),
            },
            RStmt::Continue => match b.loops.last().map(|c| (c.is_for, c.head)) {
                Some((true, head)) => {
                    b.emit(Insn::Jump(head));
                }
                Some((false, _)) => {
                    let site = b.emit_jump(Insn::Jump(0));
                    b.loops
                        .last_mut()
                        .expect("loop ctx")
                        .continue_sites
                        .push(site);
                }
                None => b.emit(Insn::ContinueFlow),
            },
            RStmt::Import { items } => {
                self.code.imports.push(items.clone().into_boxed_slice());
                b.emit(Insn::Import((self.code.imports.len() - 1) as u32));
            }
            RStmt::FromImport { module, names } => {
                self.code
                    .from_imports
                    .push((module.clone(), names.clone().into_boxed_slice()));
                b.emit(Insn::FromImport((self.code.from_imports.len() - 1) as u32));
            }
            RStmt::Raise(e) => match e {
                None => b.emit(Insn::Reraise),
                Some(e) => {
                    self.expr(b, e);
                    b.emit(Insn::Raise);
                }
            },
            RStmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                let body_block = self.build_stmts(body);
                let handlers = handlers
                    .iter()
                    .map(|h| CHandler {
                        exc_type: h.exc_type.clone(),
                        name: h.name,
                        body: self.build_stmts(&h.body),
                    })
                    .collect();
                let orelse = if orelse.is_empty() {
                    NO_BLOCK
                } else {
                    self.build_stmts(orelse)
                };
                let finalbody = if finalbody.is_empty() {
                    NO_BLOCK
                } else {
                    self.build_stmts(finalbody)
                };
                self.code.trys.push(CTry {
                    body: body_block,
                    handlers,
                    orelse,
                    finalbody,
                    on_break: None,
                    on_continue: None,
                });
                let idx = self.code.trys.len() - 1;
                if let Some(ctx) = b.loops.last_mut() {
                    ctx.try_idxs.push(idx);
                }
                b.emit(Insn::Try(idx as u32));
            }
            RStmt::Global(names) => {
                for n in names {
                    b.emit(Insn::Global(*n));
                }
            }
            RStmt::Assert { test, msg } => {
                self.expr(b, test);
                let ok = b.emit_jump(Insn::PopJumpIfTrue(0));
                match msg {
                    Some(m) => {
                        self.expr(b, m);
                        b.emit(Insn::AssertRaise { has_msg: true });
                    }
                    None => b.emit(Insn::AssertRaise { has_msg: false }),
                }
                let end = b.here();
                b.patch(ok, end);
            }
            RStmt::Del(target) => {
                self.code.dels.push(target.clone());
                b.emit(Insn::Del((self.code.dels.len() - 1) as u32));
            }
        }
    }

    /// Compile a store of the stack top into `target` (assignment tail).
    fn store(&mut self, b: &mut BlockBuilder, target: &RExpr) {
        match target {
            RExpr::Name(n) => b.emit(Insn::StoreName(*n)),
            RExpr::Attribute { value, attr, .. } => {
                self.expr(b, value);
                b.emit(Insn::StoreAttr(*attr));
            }
            RExpr::Subscript { value, index } => {
                self.expr(b, value);
                self.expr(b, index);
                b.emit(Insn::StoreItem);
            }
            RExpr::Tuple(targets) | RExpr::List(targets) => {
                b.emit(Insn::Unpack(targets.len() as u32));
                for t in targets {
                    self.store(b, t);
                }
            }
            _ => b.emit(Insn::InvalidAssign),
        }
    }

    fn expr(&mut self, b: &mut BlockBuilder, e: &RExpr) {
        b.tick();
        match e {
            RExpr::None => {
                let id = self.const_id(Const::None);
                b.insns.push(Insn::Const(id));
            }
            RExpr::True => {
                let id = self.const_id(Const::True);
                b.insns.push(Insn::Const(id));
            }
            RExpr::False => {
                let id = self.const_id(Const::False);
                b.insns.push(Insn::Const(id));
            }
            RExpr::Int(v) => {
                let id = self.const_id(Const::Int(*v));
                b.insns.push(Insn::Const(id));
            }
            RExpr::Float(v) => {
                let id = self.const_id(Const::Float(*v));
                b.insns.push(Insn::Const(id));
            }
            RExpr::Str(s) => {
                self.code.strs.push(Arc::clone(s));
                b.emit(Insn::Str((self.code.strs.len() - 1) as u32));
            }
            RExpr::Name(n) => b.emit(Insn::LoadName(*n)),
            RExpr::List(items) => {
                for i in items {
                    self.expr(b, i);
                }
                b.emit(Insn::MakeList(items.len() as u32));
            }
            RExpr::Tuple(items) => {
                for i in items {
                    self.expr(b, i);
                }
                b.emit(Insn::MakeTuple(items.len() as u32));
            }
            RExpr::Dict(pairs) => {
                for (k, v) in pairs {
                    self.expr(b, k);
                    self.expr(b, v);
                }
                b.emit(Insn::MakeDict(pairs.len() as u32));
            }
            RExpr::Attribute { value, attr, site } => {
                self.expr(b, value);
                b.emit(Insn::LoadAttr {
                    attr: *attr,
                    site: *site,
                });
            }
            RExpr::Subscript { value, index } => {
                self.expr(b, value);
                self.expr(b, index);
                b.emit(Insn::LoadItem);
            }
            RExpr::Call { func, args, kwargs } => {
                self.expr(b, func);
                for a in args {
                    self.expr(b, a);
                }
                let kw = if kwargs.is_empty() {
                    NO_KW
                } else {
                    let names: Box<[Symbol]> = kwargs.iter().map(|(k, _)| *k).collect();
                    for (_, v) in kwargs {
                        self.expr(b, v);
                    }
                    self.code.kwnames.push(names);
                    (self.code.kwnames.len() - 1) as u32
                };
                b.emit(Insn::Call {
                    argc: args.len() as u32,
                    kw,
                });
            }
            RExpr::Unary { op, operand } => {
                self.expr(b, operand);
                b.emit(Insn::Unary(*op));
            }
            RExpr::Binary { left, op, right } => {
                self.expr(b, left);
                self.expr(b, right);
                b.emit(Insn::Binary(*op));
            }
            RExpr::Bool { op, values } => {
                let mut sites = Vec::with_capacity(values.len());
                let last = values.len() - 1;
                for (i, v) in values.iter().enumerate() {
                    self.expr(b, v);
                    if i < last {
                        sites.push(b.emit_jump(match op {
                            BoolOp::And => Insn::JumpIfFalseOrPop(0),
                            BoolOp::Or => Insn::JumpIfTrueOrPop(0),
                        }));
                    }
                }
                let end = b.here();
                for site in sites {
                    b.patch(site, end);
                }
            }
            RExpr::Compare { left, ops } => {
                self.expr(b, left);
                if let [(op, rhs)] = ops.as_slice() {
                    self.expr(b, rhs);
                    b.emit(Insn::Compare(*op));
                } else {
                    let mut sites = Vec::with_capacity(ops.len());
                    for (op, rhs) in ops {
                        self.expr(b, rhs);
                        sites.push(b.emit_jump(Insn::CmpChain { op: *op, fail: 0 }));
                    }
                    b.emit(Insn::Pop);
                    let id = self.const_id(Const::True);
                    b.insns.push(Insn::Const(id));
                    let end = b.here();
                    for site in sites {
                        b.patch(site, end);
                    }
                }
            }
            RExpr::Conditional { test, body, orelse } => {
                self.expr(b, test);
                let alt = b.emit_jump(Insn::PopJumpIfFalse(0));
                self.expr(b, body);
                let end_site = b.emit_jump(Insn::Jump(0));
                let alt_at = b.here();
                b.patch(alt, alt_at);
                self.expr(b, orelse);
                let end = b.here();
                b.patch(end_site, end);
            }
            RExpr::ListComp {
                element,
                targets,
                iter,
                cond,
            } => {
                self.expr(b, iter);
                let cond = match cond {
                    Some(c) => self.build_expr(c),
                    None => NO_BLOCK,
                };
                let element = self.build_expr(element);
                self.code.comps.push(CComp {
                    targets: targets.clone().into_boxed_slice(),
                    cond,
                    element,
                });
                b.emit(Insn::ListComp((self.code.comps.len() - 1) as u32));
            }
            RExpr::Slice { value, start, stop } => {
                self.expr(b, value);
                if let Some(s) = start {
                    self.expr(b, s);
                }
                if let Some(s) = stop {
                    self.expr(b, s);
                }
                b.emit(Insn::Slice {
                    has_start: start.is_some(),
                    has_stop: stop.is_some(),
                });
            }
        }
    }
}

// -- virtual machine ------------------------------------------------------

use crate::interp::{unary_op, Env, Flow, Interpreter};
use crate::value::{py_str, ExcKind, PyErr, Value};
use std::rc::Rc;

/// Per-invocation operand state. One frame serves a whole code object:
/// nested blocks (try bodies, handlers, comprehension expressions) run in
/// the same frame, and [`Insn::Try`] truncates back to its saved bases
/// when it captures an error mid-expression.
#[derive(Debug, Default)]
pub(crate) struct VmFrame {
    stack: Vec<Value>,
    iters: Vec<(Vec<Value>, usize)>,
}

impl Interpreter {
    /// Run a compiled module body (block 0) in `env`. The bytecode twin
    /// of the tree-walker's `exec_block`.
    pub(crate) fn vm_exec_block(&mut self, code: &CodeObj, env: &mut Env) -> Result<(), PyErr> {
        match self.with_pooled_frame(code, env)? {
            Flow::Normal => Ok(()),
            _ => Err(PyErr::new(
                ExcKind::RuntimeError,
                "return/break/continue outside of function or loop",
            )),
        }
    }

    /// Run a compiled function body and return its control-flow outcome.
    /// The bytecode twin of the tree-walker's `exec_suite`.
    pub(crate) fn vm_run_suite(&mut self, code: &CodeObj, env: &mut Env) -> Result<Flow, PyErr> {
        self.with_pooled_frame(code, env)
    }

    /// Run block 0 of `code` in a frame drawn from (and returned to) the
    /// interpreter's frame pool, so nested calls reuse already-grown operand
    /// stacks instead of re-allocating one `Vec` pair per invocation.
    fn with_pooled_frame(&mut self, code: &CodeObj, env: &mut Env) -> Result<Flow, PyErr> {
        let mut frame = self.vm_frames.pop().unwrap_or_default();
        let result = self.run_block(code, 0, env, &mut frame);
        frame.stack.clear();
        frame.iters.clear();
        self.vm_frames.push(frame);
        result
    }

    fn run_block(
        &mut self,
        code: &CodeObj,
        block: u32,
        env: &mut Env,
        frame: &mut VmFrame,
    ) -> Result<Flow, PyErr> {
        let insns: &[Insn] = &code.blocks[block as usize];
        let mut pc = 0usize;
        while let Some(insn) = insns.get(pc) {
            match insn {
                Insn::StmtTick { extra } => {
                    self.meter.steps += 1;
                    if self.meter.steps > self.step_limit {
                        return Err(PyErr::new(
                            ExcKind::ResourceExhausted,
                            format!("step limit of {} exceeded", self.step_limit),
                        ));
                    }
                    self.meter
                        .tick(self.cost.stmt_ns + self.cost.expr_node_ns * *extra as u64);
                }
                Insn::Tick(n) => {
                    self.meter.tick(self.cost.expr_node_ns * *n as u64);
                }
                Insn::LoopStep => {
                    self.meter.steps += 1;
                    if self.meter.steps > self.step_limit {
                        return Err(PyErr::new(
                            ExcKind::ResourceExhausted,
                            "step limit exceeded in while loop",
                        ));
                    }
                }
                Insn::Const(i) => frame.stack.push(match code.consts[*i as usize] {
                    Const::None => Value::None,
                    Const::True => Value::Bool(true),
                    Const::False => Value::Bool(false),
                    Const::Int(v) => Value::Int(v),
                    Const::Float(v) => Value::Float(v),
                }),
                Insn::Str(i) => {
                    let s = &code.strs[*i as usize];
                    self.meter.alloc(self.cost.str_char_bytes * s.len() as u64);
                    frame.stack.push(Value::Str(Arc::clone(s)));
                }
                Insn::LoadName(sym) => {
                    let v = self.lookup_name(*sym, env)?;
                    frame.stack.push(v);
                }
                Insn::StoreName(sym) => {
                    let v = frame.stack.pop().expect("StoreName operand");
                    self.bind_name(*sym, v, env);
                }
                Insn::Pop => {
                    frame.stack.pop();
                }
                Insn::Dup => {
                    let v = frame.stack.last().expect("Dup operand").clone();
                    frame.stack.push(v);
                }
                Insn::MakeList(n) => {
                    let at = frame.stack.len() - *n as usize;
                    let items: Vec<Value> = frame.stack.split_off(at);
                    self.meter.alloc(self.cost.element_bytes * *n as u64);
                    frame.stack.push(Value::list(items));
                }
                Insn::MakeTuple(n) => {
                    let at = frame.stack.len() - *n as usize;
                    let items: Vec<Value> = frame.stack.split_off(at);
                    self.meter.alloc(self.cost.element_bytes * *n as u64);
                    frame.stack.push(Value::tuple(items));
                }
                Insn::MakeDict(n) => {
                    let at = frame.stack.len() - 2 * *n as usize;
                    let mut flat = frame.stack.split_off(at).into_iter();
                    let mut pairs = Vec::with_capacity(*n as usize);
                    while let (Some(k), Some(v)) = (flat.next(), flat.next()) {
                        pairs.push((k, v));
                    }
                    self.meter.alloc(self.cost.element_bytes * 2 * *n as u64);
                    frame.stack.push(Value::dict(pairs));
                }
                Insn::LoadAttr { attr, site } => {
                    let obj = frame.stack.pop().expect("LoadAttr operand");
                    let v = self.attr_lookup(&obj, *attr, Some(*site))?;
                    frame.stack.push(v);
                }
                Insn::StoreAttr(attr) => {
                    let obj = frame.stack.pop().expect("StoreAttr object");
                    let v = frame.stack.pop().expect("StoreAttr value");
                    self.set_attr(&obj, *attr, v)?;
                }
                Insn::LoadItem => {
                    let idx = frame.stack.pop().expect("LoadItem index");
                    let obj = frame.stack.pop().expect("LoadItem object");
                    let v = self.get_item(&obj, &idx)?;
                    frame.stack.push(v);
                }
                Insn::StoreItem => {
                    let idx = frame.stack.pop().expect("StoreItem index");
                    let obj = frame.stack.pop().expect("StoreItem object");
                    let v = frame.stack.pop().expect("StoreItem value");
                    self.set_item(&obj, idx, v)?;
                }
                Insn::Slice {
                    has_start,
                    has_stop,
                } => {
                    let stop = if *has_stop { frame.stack.pop() } else { None };
                    let start = if *has_start { frame.stack.pop() } else { None };
                    let v = frame.stack.pop().expect("Slice operand");
                    let out = self.slice_value(&v, start.as_ref(), stop.as_ref())?;
                    frame.stack.push(out);
                }
                Insn::Unary(op) => {
                    let v = frame.stack.pop().expect("Unary operand");
                    frame.stack.push(unary_op(*op, v)?);
                }
                Insn::Binary(op) => {
                    let r = frame.stack.pop().expect("Binary rhs");
                    let l = frame.stack.pop().expect("Binary lhs");
                    let out = self.binary_op(*op, l, r)?;
                    frame.stack.push(out);
                }
                Insn::Compare(op) => {
                    let r = frame.stack.pop().expect("Compare rhs");
                    let l = frame.stack.pop().expect("Compare lhs");
                    let out = self.compare(*op, &l, &r)?;
                    frame.stack.push(Value::Bool(out));
                }
                Insn::CmpChain { op, fail } => {
                    let r = frame.stack.pop().expect("CmpChain rhs");
                    let l = frame.stack.pop().expect("CmpChain lhs");
                    if self.compare(*op, &l, &r)? {
                        frame.stack.push(r);
                    } else {
                        frame.stack.push(Value::Bool(false));
                        pc = *fail as usize;
                        continue;
                    }
                }
                Insn::Call { argc, kw } => {
                    let kwargs = if *kw == NO_KW {
                        Vec::new()
                    } else {
                        let names = &code.kwnames[*kw as usize];
                        let at = frame.stack.len() - names.len();
                        names
                            .iter()
                            .copied()
                            .zip(frame.stack.split_off(at))
                            .collect()
                    };
                    let at = frame.stack.len() - *argc as usize;
                    let args = frame.stack.split_off(at);
                    let f = frame.stack.pop().expect("Call callee");
                    let out = self.call_value(f, args, kwargs)?;
                    frame.stack.push(out);
                }
                Insn::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                Insn::PopJumpIfFalse(t) => {
                    if !frame.stack.pop().expect("jump operand").truthy() {
                        pc = *t as usize;
                        continue;
                    }
                }
                Insn::PopJumpIfTrue(t) => {
                    if frame.stack.pop().expect("jump operand").truthy() {
                        pc = *t as usize;
                        continue;
                    }
                }
                Insn::JumpIfFalseOrPop(t) => {
                    if !frame.stack.last().expect("jump operand").truthy() {
                        pc = *t as usize;
                        continue;
                    }
                    frame.stack.pop();
                }
                Insn::JumpIfTrueOrPop(t) => {
                    if frame.stack.last().expect("jump operand").truthy() {
                        pc = *t as usize;
                        continue;
                    }
                    frame.stack.pop();
                }
                Insn::ForSetup => {
                    let iterable = frame.stack.pop().expect("ForSetup operand");
                    let items = self.iter_values(&iterable)?;
                    frame.iters.push((items, 0));
                }
                Insn::ForNext { targets, end } => {
                    let next = {
                        let (items, idx) = frame.iters.last_mut().expect("ForNext iterator");
                        if *idx < items.len() {
                            let v = items[*idx].clone();
                            *idx += 1;
                            Some(v)
                        } else {
                            None
                        }
                    };
                    match next {
                        None => {
                            frame.iters.pop();
                            pc = *end as usize;
                            continue;
                        }
                        Some(item) => {
                            let syms = &code.for_targets[*targets as usize];
                            if let [target] = &**syms {
                                self.bind_name(*target, item, env);
                            } else {
                                let parts = self.iter_values(&item)?;
                                if parts.len() != syms.len() {
                                    return Err(PyErr::new(
                                        ExcKind::ValueError,
                                        format!(
                                            "cannot unpack {} values into {} loop targets",
                                            parts.len(),
                                            syms.len()
                                        ),
                                    ));
                                }
                                for (t, v) in syms.iter().zip(parts) {
                                    self.bind_name(*t, v, env);
                                }
                            }
                        }
                    }
                }
                Insn::PopIterJump(t) => {
                    frame.iters.pop();
                    pc = *t as usize;
                    continue;
                }
                Insn::ListComp(i) => {
                    let comp = &code.comps[*i as usize];
                    let iterable = frame.stack.pop().expect("ListComp iterable");
                    let items = self.iter_values(&iterable)?;
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        self.meter.steps += 1;
                        if self.meter.steps > self.step_limit {
                            return Err(PyErr::new(
                                ExcKind::ResourceExhausted,
                                "step limit exceeded in comprehension",
                            ));
                        }
                        if let [target] = &*comp.targets {
                            self.bind_name(*target, item, env);
                        } else {
                            let parts = self.iter_values(&item)?;
                            if parts.len() != comp.targets.len() {
                                return Err(PyErr::new(
                                    ExcKind::ValueError,
                                    "comprehension target unpack mismatch",
                                ));
                            }
                            for (t, v) in comp.targets.iter().zip(parts) {
                                self.bind_name(*t, v, env);
                            }
                        }
                        if comp.cond != NO_BLOCK {
                            self.run_block(code, comp.cond, env, frame)?;
                            let keep = frame.stack.pop().expect("comp cond value");
                            if !keep.truthy() {
                                continue;
                            }
                        }
                        self.run_block(code, comp.element, env, frame)?;
                        out.push(frame.stack.pop().expect("comp element value"));
                    }
                    self.meter.alloc(self.cost.element_bytes * out.len() as u64);
                    frame.stack.push(Value::list(out));
                }
                Insn::DefFunc(i) => {
                    let f = &code.funcs[*i as usize];
                    let func = self.make_function(f, env)?;
                    self.meter.alloc(
                        self.cost.func_base_bytes + self.cost.func_stmt_bytes * f.stmt_count,
                    );
                    self.bind_name(f.sym, func, env);
                }
                Insn::DefClass(i) => {
                    let c = &code.classes[*i as usize];
                    let class = self.make_class(c, env)?;
                    self.meter.alloc(self.cost.class_base_bytes);
                    self.bind_name(c.sym, class, env);
                }
                Insn::Import(i) => {
                    self.exec_import(&code.imports[*i as usize], env)?;
                }
                Insn::FromImport(i) => {
                    let (module, names) = &code.from_imports[*i as usize];
                    self.exec_from_import(module, names, env)?;
                }
                Insn::Del(i) => {
                    self.exec_del(&code.dels[*i as usize], env)?;
                }
                Insn::Global(sym) => {
                    env.global_decls.insert(*sym);
                }
                Insn::Return => {
                    let v = frame.stack.pop().expect("Return value");
                    return Ok(Flow::Return(v));
                }
                Insn::ReturnNone => return Ok(Flow::Return(Value::None)),
                Insn::BreakFlow => return Ok(Flow::Break),
                Insn::ContinueFlow => return Ok(Flow::Continue),
                Insn::Raise => {
                    let v = frame.stack.pop().expect("Raise operand");
                    return Err(self.value_to_exception(v)?);
                }
                Insn::Reraise => {
                    return Err(PyErr::new(ExcKind::RuntimeError, "re-raise outside except"))
                }
                Insn::AssertRaise { has_msg } => {
                    let message = if *has_msg {
                        py_str(&frame.stack.pop().expect("assert message"))
                    } else {
                        String::new()
                    };
                    return Err(PyErr::new(ExcKind::AssertionError, message));
                }
                Insn::Try(i) => {
                    let t = &code.trys[*i as usize];
                    match self.run_try(code, t, env, frame)? {
                        Flow::Normal => {}
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Break => match t.on_break {
                            Some(exit) => {
                                if exit.pop_iter {
                                    frame.iters.pop();
                                }
                                pc = exit.target as usize;
                                continue;
                            }
                            None => return Ok(Flow::Break),
                        },
                        Flow::Continue => match t.on_continue {
                            Some(target) => {
                                pc = target as usize;
                                continue;
                            }
                            None => return Ok(Flow::Continue),
                        },
                    }
                }
                Insn::Unpack(n) => {
                    let v = frame.stack.pop().expect("Unpack operand");
                    let items = self.iter_values(&v)?;
                    if items.len() != *n as usize {
                        return Err(PyErr::new(
                            ExcKind::ValueError,
                            format!("cannot unpack {} values into {} targets", items.len(), *n),
                        ));
                    }
                    for item in items.into_iter().rev() {
                        frame.stack.push(item);
                    }
                }
                Insn::InvalidAssign => return Err(PyErr::type_error("invalid assignment target")),
            }
            pc += 1;
        }
        Ok(Flow::Normal)
    }

    /// Execute a compiled `try` statement, mirroring the tree-walker's
    /// `RStmt::Try` arm exactly (uncatchable `ResourceExhausted`, in-order
    /// handler matching, `orelse` only on normal completion, `finally`
    /// always running with its own error or flow winning).
    fn run_try(
        &mut self,
        code: &CodeObj,
        t: &CTry,
        env: &mut Env,
        frame: &mut VmFrame,
    ) -> Result<Flow, PyErr> {
        let stack_base = frame.stack.len();
        let iters_base = frame.iters.len();
        let outcome = self.run_block(code, t.body, env, frame);
        let result = match outcome {
            Ok(flow) => {
                if matches!(flow, Flow::Normal) && t.orelse != NO_BLOCK {
                    self.run_block(code, t.orelse, env, frame)
                } else {
                    Ok(flow)
                }
            }
            Err(err) => {
                // The protected body may have unwound mid-expression or
                // mid-loop: reset this frame's portion of the stacks.
                frame.stack.truncate(stack_base);
                frame.iters.truncate(iters_base);
                // ResourceExhausted is not catchable: it models the
                // platform killing the function.
                if matches!(err.kind, ExcKind::ResourceExhausted) {
                    Err(err)
                } else {
                    let mut handled = None;
                    for h in t.handlers.iter() {
                        let matches = match &h.exc_type {
                            None => true,
                            Some(class) => err.matches_handler(class),
                        };
                        if matches {
                            if let Some(name) = h.name {
                                self.bind_name(name, Value::ExcValue(Rc::new(err.clone())), env);
                            }
                            handled = Some(self.run_block(code, h.body, env, frame));
                            break;
                        }
                    }
                    handled.unwrap_or(Err(err))
                }
            }
        };
        if t.finalbody != NO_BLOCK {
            if result.is_err() {
                frame.stack.truncate(stack_base);
                frame.iters.truncate(iters_base);
            }
            // `finally` runs regardless; its own error or flow wins.
            match self.run_block(code, t.finalbody, env, frame)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Engine;
    use crate::registry::Registry;
    use crate::Interpreter;

    /// Run `source` under both engines against the same module set and
    /// assert byte-identical behavior: result, stdout, virtual clock,
    /// simulated memory and step count.
    fn assert_engines_agree(modules: &[(&str, &str)], source: &str) {
        let mut registry = Registry::new();
        for (name, src) in modules {
            registry.set_module(*name, *src);
        }
        let mut outcomes = Vec::new();
        for engine in [Engine::Tree, Engine::Vm] {
            let mut interp = Interpreter::new(registry.clone());
            interp.engine = engine;
            let result = interp
                .exec_main(source)
                .map(|_| ())
                .map_err(|e| e.to_string());
            outcomes.push((
                result,
                interp.stdout.clone(),
                interp.meter.clock_ns(),
                interp.meter.mem_bytes(),
                interp.meter.steps,
            ));
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "tree vs vm diverged on:\n{source}"
        );
    }

    fn agree(source: &str) {
        assert_engines_agree(&[], source);
    }

    #[test]
    fn arithmetic_and_prints_match() {
        agree("x = 1 + 2 * 3\ny = x % 4\nprint(x, y, x ** 2, -x, not y)\n");
    }

    #[test]
    fn while_loop_with_break_and_continue_matches() {
        agree(
            "total = 0\ni = 0\nwhile True:\n    i = i + 1\n    if i % 2 == 0:\n        continue\n    if i > 9:\n        break\n    total = total + i\nprint(total, i)\n",
        );
    }

    #[test]
    fn for_loop_with_unpacking_matches() {
        agree(
            "pairs = [(1, 'a'), (2, 'b'), (3, 'c')]\nout = []\nfor n, s in pairs:\n    if n == 2:\n        continue\n    out.append(s * n)\nprint(out)\n",
        );
    }

    #[test]
    fn comprehension_with_condition_matches() {
        agree("xs = [i * i for i in range(10) if i % 3 != 0]\nprint(xs, len(xs))\n");
    }

    #[test]
    fn chained_comparison_short_circuits_identically() {
        agree("def f(x):\n    print('f', x)\n    return x\nprint(f(1) < f(2) < f(0) < f(3))\n");
    }

    #[test]
    fn bool_operators_preserve_values_and_ticks() {
        agree("a = 0 or '' or [1]\nb = 1 and 'x' and {}\nprint(a, b, a or b, a and b)\n");
    }

    #[test]
    fn try_except_else_finally_matches() {
        agree(
            "log = []\ntry:\n    log.append('body')\n    raise ValueError('boom')\nexcept KeyError:\n    log.append('wrong')\nexcept ValueError as e:\n    log.append(str(e))\nelse:\n    log.append('else')\nfinally:\n    log.append('finally')\nprint(log)\n",
        );
    }

    #[test]
    fn break_across_try_finally_matches() {
        agree(
            "log = []\nfor i in range(5):\n    try:\n        if i == 2:\n            break\n        log.append(i)\n    finally:\n        log.append('fin')\nprint(log)\n",
        );
    }

    #[test]
    fn continue_across_try_in_while_matches() {
        agree(
            "i = 0\nlog = []\nwhile i < 4:\n    i = i + 1\n    try:\n        if i % 2:\n            continue\n        log.append(i)\n    finally:\n        log.append('f')\nprint(log, i)\n",
        );
    }

    #[test]
    fn uncaught_errors_match_exactly() {
        agree("def f():\n    return unknown_name\nf()\n");
        agree("xs = [1, 2]\nprint(xs[5])\n");
        agree("a, b, c = [1, 2]\n");
        agree("assert 1 == 2, 'expected ' + str(1)\n");
        agree("1 + 'x'\n");
        agree("raise\n");
    }

    #[test]
    fn classes_and_methods_match() {
        agree(
            "class Greeter:\n    prefix = 'hi '\n    def __init__(self, name):\n        self.name = name\n    def greet(self):\n        return self.prefix + self.name\ng = Greeter('vm')\ng.prefix = 'hello '\nprint(g.greet())\n",
        );
    }

    #[test]
    fn imports_and_attr_caches_match() {
        assert_engines_agree(
            &[
                ("lib", "value = 10\ndef bump(x):\n    return x + value\n"),
                ("pkg", "import lib\nwrapped = lib.bump\n"),
            ],
            "import pkg\nimport lib\nprint(pkg.wrapped(5))\nfor i in range(3):\n    print(lib.bump(i))\n",
        );
    }

    #[test]
    fn augmented_and_multi_target_assignment_match() {
        agree(
            "class Box:\n    pass\nb = Box()\nb.v = 1\nb.v += 2\nd = {'k': 1}\nd['k'] += 5\nx = y = z = [0]\ny.append(1)\nprint(b.v, d['k'], x, z)\n",
        );
    }

    #[test]
    fn slices_and_subscripts_match() {
        agree("s = 'hello world'\nxs = [1, 2, 3, 4, 5]\nprint(s[2:7], s[:5], s[6:], xs[1:4], xs[:-1])\n");
    }

    #[test]
    fn conditional_expression_evaluates_one_arm() {
        agree("def side(tag, v):\n    print(tag)\n    return v\nx = side('a', 1) if side('t', True) else side('b', 2)\nprint(x)\n");
    }

    #[test]
    fn step_limit_errors_match_between_engines() {
        let source = "i = 0\nwhile True:\n    i = i + 1\n";
        let mut outcomes = Vec::new();
        for engine in [Engine::Tree, Engine::Vm] {
            let mut interp = Interpreter::new(Registry::new());
            interp.engine = engine;
            interp.step_limit = 10_000;
            let err = interp.exec_main(source).unwrap_err().to_string();
            outcomes.push((err, interp.meter.clock_ns(), interp.meter.steps));
        }
        assert_eq!(outcomes[0], outcomes[1]);
    }

    #[test]
    fn module_bytecode_slot_is_shared_across_clones() {
        let mut registry = Registry::new();
        registry.set_module("m", "x = 1\n");
        let clone = registry.clone();
        let a = registry.compile_module("m").unwrap();
        let b = clone.compile_module("m").unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "clones must share the compiled slot"
        );
        registry.set_module("m", "x = 2\n");
        let c = registry.compile_module("m").unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(&a, &c),
            "rewritten module must recompile"
        );
    }

    #[test]
    fn function_bytecode_compiles_once_per_definition() {
        let mut interp = Interpreter::new(Registry::new());
        interp
            .exec_main("def f(x):\n    return x + 1\nfor i in range(10):\n    f(i)\n")
            .unwrap();
    }
}
