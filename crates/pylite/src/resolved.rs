//! Symbol-resolved IR: the AST with every identifier pre-interned.
//!
//! Parsing produces the string-based [`crate::ast`] tree, which the static
//! analyzer, the rewriter, and `unparse` keep using. The interpreter,
//! however, used to hash and clone `String` names on every variable lookup,
//! attribute access, and call — once *per probe*, thousands of times per
//! Delta-Debugging run. This module is a one-time resolve pass that mirrors
//! the AST into a parallel tree whose names are [`Symbol`]s (dense `u32`s
//! from the registry's shared [`Interner`]) and whose attribute-access
//! sites carry unique inline-cache ids.
//!
//! The resolved tree is cached next to the parse result in the registry
//! (one `OnceLock` slot per module, shared by all COW clones), so the pass
//! runs once per module *family*, not once per probe. It is intentionally
//! `Send + Sync` — function bodies are `Arc`-shared slices, which also
//! means defining a function no longer deep-clones its body.
//!
//! Resolution additionally precomputes the statement counts and base-class
//! paths the evaluator previously recomputed at definition time. The
//! mapping is 1:1 node-for-node with the source AST: the interpreter's
//! per-node cost ticks are unchanged by construction.

use crate::ast::{BinOp, BoolOp, CmpOp, Expr, Program, Stmt, UnaryOp};
use crate::intern::{Interner, Symbol};
use std::sync::{Arc, OnceLock};

/// A resolved module: a sequence of resolved statements.
#[derive(Debug, Clone, Default)]
pub struct RProgram {
    /// Top-level statements in program order.
    pub body: Vec<RStmt>,
}

/// One resolved `import` clause.
#[derive(Debug, Clone)]
pub struct RImportItem {
    /// Dotted module path, e.g. `torch.nn`.
    pub module: Box<str>,
    /// The name bound in the importing namespace (alias, else the first
    /// path component — CPython semantics for `import a.b`).
    pub bind: Symbol,
    /// When no alias was given, the top package name whose module object
    /// gets bound; `None` means the alias binds the leaf module.
    pub top: Option<Box<str>>,
}

/// One name in a resolved `from module import ...` statement.
#[derive(Debug, Clone)]
pub enum RFromName {
    /// `from m import *`.
    Star,
    /// `from m import name [as alias]`.
    Named {
        /// The attribute looked up in the source module.
        name: Symbol,
        /// The name bound locally (the alias, else `name` itself).
        bind: Symbol,
    },
}

/// A resolved `except` clause.
#[derive(Debug, Clone)]
pub struct RExceptHandler {
    /// Exception class name to match (kept as a string: [`crate::PyErr`]
    /// matching walks string class chains), or `None` for bare `except:`.
    pub exc_type: Option<Box<str>>,
    /// Binding introduced by `as name`.
    pub name: Option<Symbol>,
    /// Handler body.
    pub body: Vec<RStmt>,
}

/// A resolved function parameter.
#[derive(Debug, Clone)]
pub struct RParam {
    /// Parameter name as a symbol (keys the call frame's locals).
    pub sym: Symbol,
    /// Parameter name as text, for error messages.
    pub name: Arc<str>,
    /// Default value, evaluated at definition time.
    pub default: Option<RExpr>,
}

/// A resolved function definition, shared (`Arc`) between the defining
/// statement and every [`crate::PyFunc`] created from it.
#[derive(Debug)]
pub struct RFuncDef {
    /// Function name as a symbol (the attribute it binds).
    pub sym: Symbol,
    /// Function name as text, for `repr` and error messages.
    pub name: Arc<str>,
    /// Positional parameters.
    pub params: Vec<RParam>,
    /// Body statements, shared with the functions defined from this node.
    pub body: Arc<[RStmt]>,
    /// `ast::stmt_count` of the source body, precomputed for the cost
    /// model's definition-time allocation charge.
    pub stmt_count: u64,
    /// Lazily compiled bytecode for the body, shared by every `PyFunc`
    /// created from this definition (and, through the registry's resolved
    /// slot, by every COW clone of the module family).
    pub(crate) compiled: OnceLock<Arc<crate::bytecode::CodeObj>>,
}

/// A resolved class definition.
#[derive(Debug, Clone)]
pub struct RClassDef {
    /// Class name as a symbol (the attribute it binds).
    pub sym: Symbol,
    /// Class name as text (stored on the runtime class for messages).
    pub name: Arc<str>,
    /// Base-class paths, pre-split on `.` (`a.B` → `[a, B]`).
    pub bases: Vec<Vec<Symbol>>,
    /// Class body.
    pub body: Vec<RStmt>,
}

/// A resolved statement. Mirrors [`crate::ast::Stmt`] 1:1.
#[derive(Debug, Clone)]
pub enum RStmt {
    /// An expression evaluated for effect.
    Expr(RExpr),
    /// `target = value` (possibly chained).
    Assign {
        /// Assignment targets.
        targets: Vec<RExpr>,
        /// Right-hand side.
        value: RExpr,
    },
    /// `target op= value`.
    AugAssign {
        /// Target (Name / Attribute / Subscript).
        target: RExpr,
        /// The binary operator combined with assignment.
        op: BinOp,
        /// Right-hand side.
        value: RExpr,
    },
    /// `if`/`elif` chain with optional `else`.
    If {
        /// `(condition, body)` pairs.
        branches: Vec<(RExpr, Vec<RStmt>)>,
        /// `else` body (possibly empty).
        orelse: Vec<RStmt>,
    },
    /// `while test: body`.
    While {
        /// Loop condition.
        test: RExpr,
        /// Loop body.
        body: Vec<RStmt>,
    },
    /// `for targets in iter: body`.
    For {
        /// Loop variable names (tuple-unpacked when more than one).
        targets: Vec<Symbol>,
        /// Iterable expression.
        iter: RExpr,
        /// Loop body.
        body: Vec<RStmt>,
    },
    /// `def name(params): body`.
    FuncDef(Arc<RFuncDef>),
    /// `class name(bases): body`.
    ClassDef(RClassDef),
    /// `return [expr]`.
    Return(Option<RExpr>),
    /// `pass`.
    Pass,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `import a.b [as c][, ...]`.
    Import {
        /// The imported modules.
        items: Vec<RImportItem>,
    },
    /// `from module import name [as alias][, ...]`.
    FromImport {
        /// Dotted source module.
        module: Box<str>,
        /// Imported names (or a single `*`).
        names: Vec<RFromName>,
    },
    /// `raise [expr]`.
    Raise(Option<RExpr>),
    /// `try` / `except` / `else` / `finally`.
    Try {
        /// Protected body.
        body: Vec<RStmt>,
        /// Exception handlers, tried in order.
        handlers: Vec<RExceptHandler>,
        /// `else` body, run if no exception was raised.
        orelse: Vec<RStmt>,
        /// `finally` body, always run.
        finalbody: Vec<RStmt>,
    },
    /// `global name, ...`.
    Global(Vec<Symbol>),
    /// `assert test[, msg]`.
    Assert {
        /// Condition that must hold.
        test: RExpr,
        /// Optional failure message.
        msg: Option<RExpr>,
    },
    /// `del target` (Name or Attribute).
    Del(RExpr),
}

/// A resolved expression. Mirrors [`crate::ast::Expr`] 1:1, so the
/// interpreter's per-node cost ticks are identical to the string AST walk.
#[derive(Debug, Clone)]
pub enum RExpr {
    /// `None` literal.
    None,
    /// `True` literal.
    True,
    /// `False` literal.
    False,
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal, pre-allocated so evaluation is a pointer clone.
    Str(Arc<str>),
    /// Identifier reference.
    Name(Symbol),
    /// List display `[a, b]`.
    List(Vec<RExpr>),
    /// Tuple display `(a, b)`.
    Tuple(Vec<RExpr>),
    /// Dict display `{k: v}`.
    Dict(Vec<(RExpr, RExpr)>),
    /// Attribute access `value.attr`.
    Attribute {
        /// Object expression.
        value: Box<RExpr>,
        /// Attribute name.
        attr: Symbol,
        /// Inline-cache site id, unique within the registry family.
        site: u32,
    },
    /// Subscript `value[index]`.
    Subscript {
        /// Container expression.
        value: Box<RExpr>,
        /// Index expression.
        index: Box<RExpr>,
    },
    /// Call `func(args, kw=..)`.
    Call {
        /// Callee expression.
        func: Box<RExpr>,
        /// Positional arguments.
        args: Vec<RExpr>,
        /// Keyword arguments.
        kwargs: Vec<(Symbol, RExpr)>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<RExpr>,
    },
    /// Binary arithmetic.
    Binary {
        /// Left operand.
        left: Box<RExpr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<RExpr>,
    },
    /// `a and b and c` / `a or b`.
    Bool {
        /// Connective.
        op: BoolOp,
        /// Operands (≥ 2).
        values: Vec<RExpr>,
    },
    /// Chained comparison `a < b <= c`.
    Compare {
        /// Leftmost operand.
        left: Box<RExpr>,
        /// `(op, operand)` pairs.
        ops: Vec<(CmpOp, RExpr)>,
    },
    /// Conditional expression `body if test else orelse`.
    Conditional {
        /// Condition.
        test: Box<RExpr>,
        /// Value when true.
        body: Box<RExpr>,
        /// Value when false.
        orelse: Box<RExpr>,
    },
    /// List comprehension `[element for targets in iter if cond]`.
    ListComp {
        /// Element expression.
        element: Box<RExpr>,
        /// Loop variable names.
        targets: Vec<Symbol>,
        /// Iterable expression.
        iter: Box<RExpr>,
        /// Optional filter condition.
        cond: Option<Box<RExpr>>,
    },
    /// Slice `value[start:stop]`.
    Slice {
        /// The sequence being sliced.
        value: Box<RExpr>,
        /// Inclusive start index.
        start: Option<Box<RExpr>>,
        /// Exclusive stop index.
        stop: Option<Box<RExpr>>,
    },
}

/// Resolve a parsed program against `interner`, interning every identifier
/// and allocating a fresh inline-cache site id per attribute access.
pub fn resolve_program(program: &Program, interner: &Interner) -> RProgram {
    let r = Resolver { interner };
    RProgram {
        body: r.stmts(&program.body),
    }
}

struct Resolver<'a> {
    interner: &'a Interner,
}

impl Resolver<'_> {
    fn sym(&self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Intern `s` and return the interner's shared `Arc` for its text, so
    /// resolved nodes alias the interner's allocation instead of copying.
    fn sym_text(&self, s: &str) -> (Symbol, Arc<str>) {
        let sym = self.sym(s);
        (sym, self.interner.resolve(sym))
    }

    fn stmts(&self, body: &[Stmt]) -> Vec<RStmt> {
        body.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&self, stmt: &Stmt) -> RStmt {
        match stmt {
            Stmt::Expr(e) => RStmt::Expr(self.expr(e)),
            Stmt::Assign { targets, value } => RStmt::Assign {
                targets: self.exprs(targets),
                value: self.expr(value),
            },
            Stmt::AugAssign { target, op, value } => RStmt::AugAssign {
                target: self.expr(target),
                op: *op,
                value: self.expr(value),
            },
            Stmt::If { branches, orelse } => RStmt::If {
                branches: branches
                    .iter()
                    .map(|(test, body)| (self.expr(test), self.stmts(body)))
                    .collect(),
                orelse: self.stmts(orelse),
            },
            Stmt::While { test, body } => RStmt::While {
                test: self.expr(test),
                body: self.stmts(body),
            },
            Stmt::For {
                targets,
                iter,
                body,
            } => RStmt::For {
                targets: targets.iter().map(|t| self.sym(t)).collect(),
                iter: self.expr(iter),
                body: self.stmts(body),
            },
            Stmt::FuncDef(f) => {
                let (sym, name) = self.sym_text(&f.name);
                RStmt::FuncDef(Arc::new(RFuncDef {
                    sym,
                    name,
                    params: f
                        .params
                        .iter()
                        .map(|p| {
                            let (sym, name) = self.sym_text(&p.name);
                            RParam {
                                sym,
                                name,
                                default: p.default.as_ref().map(|d| self.expr(d)),
                            }
                        })
                        .collect(),
                    body: self.stmts(&f.body).into(),
                    stmt_count: crate::ast::stmt_count(&f.body) as u64,
                    compiled: OnceLock::new(),
                }))
            }
            Stmt::ClassDef(c) => {
                let (sym, name) = self.sym_text(&c.name);
                RStmt::ClassDef(RClassDef {
                    sym,
                    name,
                    bases: c
                        .bases
                        .iter()
                        .map(|b| b.split('.').map(|part| self.sym(part)).collect())
                        .collect(),
                    body: self.stmts(&c.body),
                })
            }
            Stmt::Return(e) => RStmt::Return(e.as_ref().map(|e| self.expr(e))),
            Stmt::Pass => RStmt::Pass,
            Stmt::Break => RStmt::Break,
            Stmt::Continue => RStmt::Continue,
            Stmt::Import { items } => RStmt::Import {
                items: items
                    .iter()
                    .map(|item| {
                        let (bind, top) = match &item.alias {
                            Some(alias) => (self.sym(alias), None),
                            None => {
                                let top =
                                    item.module.split('.').next().expect("nonempty module path");
                                (self.sym(top), Some(Box::from(top)))
                            }
                        };
                        RImportItem {
                            module: item.module.as_str().into(),
                            bind,
                            top,
                        }
                    })
                    .collect(),
            },
            Stmt::FromImport { module, names } => RStmt::FromImport {
                module: module.as_str().into(),
                names: names
                    .iter()
                    .map(|(name, alias)| {
                        if name == "*" {
                            RFromName::Star
                        } else {
                            let name = self.sym(name);
                            RFromName::Named {
                                name,
                                bind: alias.as_ref().map_or(name, |a| self.sym(a)),
                            }
                        }
                    })
                    .collect(),
            },
            Stmt::Raise(e) => RStmt::Raise(e.as_ref().map(|e| self.expr(e))),
            Stmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => RStmt::Try {
                body: self.stmts(body),
                handlers: handlers
                    .iter()
                    .map(|h| RExceptHandler {
                        exc_type: h.exc_type.as_deref().map(Box::from),
                        name: h.name.as_deref().map(|n| self.sym(n)),
                        body: self.stmts(&h.body),
                    })
                    .collect(),
                orelse: self.stmts(orelse),
                finalbody: self.stmts(finalbody),
            },
            Stmt::Global(names) => RStmt::Global(names.iter().map(|n| self.sym(n)).collect()),
            Stmt::Assert { test, msg } => RStmt::Assert {
                test: self.expr(test),
                msg: msg.as_ref().map(|m| self.expr(m)),
            },
            Stmt::Del(e) => RStmt::Del(self.expr(e)),
        }
    }

    fn exprs(&self, exprs: &[Expr]) -> Vec<RExpr> {
        exprs.iter().map(|e| self.expr(e)).collect()
    }

    fn expr(&self, e: &Expr) -> RExpr {
        match e {
            Expr::None => RExpr::None,
            Expr::True => RExpr::True,
            Expr::False => RExpr::False,
            Expr::Int(v) => RExpr::Int(*v),
            Expr::Float(v) => RExpr::Float(*v),
            Expr::Str(s) => RExpr::Str(s.as_str().into()),
            Expr::Name(n) => RExpr::Name(self.sym(n)),
            Expr::List(items) => RExpr::List(self.exprs(items)),
            Expr::Tuple(items) => RExpr::Tuple(self.exprs(items)),
            Expr::Dict(pairs) => RExpr::Dict(
                pairs
                    .iter()
                    .map(|(k, v)| (self.expr(k), self.expr(v)))
                    .collect(),
            ),
            Expr::Attribute { value, attr } => RExpr::Attribute {
                value: Box::new(self.expr(value)),
                attr: self.sym(attr),
                site: self.interner.alloc_site(),
            },
            Expr::Subscript { value, index } => RExpr::Subscript {
                value: Box::new(self.expr(value)),
                index: Box::new(self.expr(index)),
            },
            Expr::Call { func, args, kwargs } => RExpr::Call {
                func: Box::new(self.expr(func)),
                args: self.exprs(args),
                kwargs: kwargs
                    .iter()
                    .map(|(k, v)| (self.sym(k), self.expr(v)))
                    .collect(),
            },
            Expr::Unary { op, operand } => RExpr::Unary {
                op: *op,
                operand: Box::new(self.expr(operand)),
            },
            Expr::Binary { left, op, right } => RExpr::Binary {
                left: Box::new(self.expr(left)),
                op: *op,
                right: Box::new(self.expr(right)),
            },
            Expr::Bool { op, values } => RExpr::Bool {
                op: *op,
                values: self.exprs(values),
            },
            Expr::Compare { left, ops } => RExpr::Compare {
                left: Box::new(self.expr(left)),
                ops: ops.iter().map(|(op, e)| (*op, self.expr(e))).collect(),
            },
            Expr::Conditional { test, body, orelse } => RExpr::Conditional {
                test: Box::new(self.expr(test)),
                body: Box::new(self.expr(body)),
                orelse: Box::new(self.expr(orelse)),
            },
            Expr::ListComp {
                element,
                targets,
                iter,
                cond,
            } => RExpr::ListComp {
                element: Box::new(self.expr(element)),
                targets: targets.iter().map(|t| self.sym(t)).collect(),
                iter: Box::new(self.expr(iter)),
                cond: cond.as_ref().map(|c| Box::new(self.expr(c))),
            },
            Expr::Slice { value, start, stop } => RExpr::Slice {
                value: Box::new(self.expr(value)),
                start: start.as_ref().map(|e| Box::new(self.expr(e))),
                stop: stop.as_ref().map(|e| Box::new(self.expr(e))),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn resolved_tree_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RProgram>();
    }

    #[test]
    fn names_resolve_to_stable_symbols() {
        let interner = Interner::new();
        let p = parse("x = 1\ny = x\n").unwrap();
        let r = resolve_program(&p, &interner);
        let x = interner.lookup("x").unwrap();
        match (&r.body[0], &r.body[1]) {
            (RStmt::Assign { targets, .. }, RStmt::Assign { value, .. }) => {
                assert!(matches!(targets[0], RExpr::Name(s) if s == x));
                assert!(matches!(value, RExpr::Name(s) if *s == x));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn attribute_sites_are_unique() {
        let interner = Interner::new();
        let p = parse("a = m.f\nb = m.f\n").unwrap();
        let r = resolve_program(&p, &interner);
        let site_of = |s: &RStmt| match s {
            RStmt::Assign { value, .. } => match value {
                RExpr::Attribute { site, .. } => *site,
                other => panic!("not an attribute: {other:?}"),
            },
            other => panic!("not an assign: {other:?}"),
        };
        assert_ne!(site_of(&r.body[0]), site_of(&r.body[1]));
        assert_eq!(interner.site_count(), 2);
    }

    #[test]
    fn funcdef_precomputes_stmt_count() {
        let interner = Interner::new();
        let src = "def f(x):\n    if x:\n        return 1\n    return 2\n";
        let p = parse(src).unwrap();
        let r = resolve_program(&p, &interner);
        match &r.body[0] {
            RStmt::FuncDef(f) => {
                let ast_count = match &p.body[0] {
                    crate::ast::Stmt::FuncDef(f) => crate::ast::stmt_count(&f.body) as u64,
                    _ => unreachable!(),
                };
                assert_eq!(f.stmt_count, ast_count);
                assert_eq!(&*f.name, "f");
            }
            other => panic!("not a funcdef: {other:?}"),
        }
    }

    #[test]
    fn dotted_bases_are_pre_split() {
        let interner = Interner::new();
        let p = parse("class C(m.Base):\n    pass\n").unwrap();
        let r = resolve_program(&p, &interner);
        match &r.body[0] {
            RStmt::ClassDef(c) => {
                assert_eq!(c.bases.len(), 1);
                assert_eq!(c.bases[0].len(), 2);
                assert_eq!(c.bases[0][0], interner.lookup("m").unwrap());
                assert_eq!(c.bases[0][1], interner.lookup("Base").unwrap());
            }
            other => panic!("not a classdef: {other:?}"),
        }
    }
}
