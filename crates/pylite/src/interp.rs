//! The pylite tree-walking interpreter with instrumentable import machinery.
//!
//! An [`Interpreter`] owns a module [`Registry`] (the virtual site-packages),
//! a [`Meter`] (virtual clock + simulated memory), a `sys.modules` cache and
//! captured stdout / external-call logs. λ-trim's profiler reads the
//! [`ImportEvent`]s the interpreter records around every module-body
//! execution — the Rust analogue of the paper's patched import loader (§5.2).
//!
//! The evaluator walks the symbol-resolved IR ([`crate::resolved`]): names
//! are pre-interned [`Symbol`]s, namespaces hash a single `u32` per lookup,
//! and module-attribute sites (`mod.attr`) carry monomorphic inline caches
//! keyed on module identity plus the namespace generation counter (see
//! DESIGN.md §8). Observable behavior — stdout, exceptions, meter ticks,
//! simulated allocations and observed accesses — is byte-identical to the
//! string-walking evaluator it replaced.

use crate::ast::{BinOp, BoolOp, CmpOp, UnaryOp};
use crate::cost::{mb_to_bytes, ms_to_ns, CostModel, Meter};
use crate::intern::{Interner, Symbol, SymbolHashBuilder};
use crate::registry::Registry;
use crate::resolved::{resolve_program, RClassDef, RExpr, RFuncDef, RStmt};
use crate::snapshot::{
    rehydrate, InitSnapshot, LogEvent, SnapEvent, SnapRecorder, SnapshotBuilder,
};
use crate::value::{
    py_eq, py_repr, py_str, Builtin, ExcKind, ModuleObj, Namespace, NativeMethod, PyClass, PyErr,
    PyFunc, PyInstance, Value,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// One recorded module-body execution, with its *marginal* cost: the delta
/// in virtual clock and simulated memory between the start and the end of
/// the body run (inclusive of any nested imports it triggered, exactly as
/// the paper defines `t` and `m` — "modules and all their submodules").
#[derive(Debug, Clone, PartialEq)]
pub struct ImportEvent {
    /// Dotted module name.
    pub module: String,
    /// Nesting depth: 0 for imports executed directly by `__main__`.
    pub depth: usize,
    /// Marginal virtual time in nanoseconds.
    pub time_ns: u64,
    /// Marginal simulated memory in bytes.
    pub mem_bytes: u64,
}

/// Control flow outcome of a statement.
pub(crate) enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// Execution environment: the module globals plus, inside functions, a
/// locals namespace and the set of `global`-declared names.
pub(crate) struct Env {
    pub(crate) globals: Namespace,
    pub(crate) locals: Option<Namespace>,
    pub(crate) global_decls: HashSet<Symbol, SymbolHashBuilder>,
    pub(crate) module: Rc<str>,
}

/// Pre-interned symbols for names the interpreter itself consults on hot
/// or semantic paths (`__name__`, `__init__`, exception fields, ...).
struct CommonSyms {
    name: Symbol,
    file: Symbol,
    message: Symbol,
    args: Symbol,
    init: Symbol,
}

impl CommonSyms {
    fn new(interner: &Interner) -> Self {
        CommonSyms {
            name: interner.intern("__name__"),
            file: interner.intern("__file__"),
            message: interner.intern("message"),
            args: interner.intern("args"),
            init: interner.intern("__init__"),
        }
    }
}

/// Pre-interned native-method names, so `xs.append` resolves with symbol
/// compares instead of resolving the attribute symbol back to a string.
struct NativeSyms {
    append: Symbol,
    extend: Symbol,
    pop: Symbol,
    index: Symbol,
    count: Symbol,
    get: Symbol,
    keys: Symbol,
    values: Symbol,
    items: Symbol,
    update: Symbol,
    upper: Symbol,
    lower: Symbol,
    strip: Symbol,
    split: Symbol,
    join: Symbol,
    replace: Symbol,
    startswith: Symbol,
    endswith: Symbol,
    format: Symbol,
}

impl NativeSyms {
    fn new(interner: &Interner) -> Self {
        NativeSyms {
            append: interner.intern("append"),
            extend: interner.intern("extend"),
            pop: interner.intern("pop"),
            index: interner.intern("index"),
            count: interner.intern("count"),
            get: interner.intern("get"),
            keys: interner.intern("keys"),
            values: interner.intern("values"),
            items: interner.intern("items"),
            update: interner.intern("update"),
            upper: interner.intern("upper"),
            lower: interner.intern("lower"),
            strip: interner.intern("strip"),
            split: interner.intern("split"),
            join: interner.intern("join"),
            replace: interner.intern("replace"),
            startswith: interner.intern("startswith"),
            endswith: interner.intern("endswith"),
            format: interner.intern("format"),
        }
    }

    /// The symbol-keyed twin of [`NativeMethod::resolve`].
    fn resolve(&self, recv: &Value, attr: Symbol) -> Option<NativeMethod> {
        use NativeMethod::*;
        match recv {
            Value::List(_) => match attr {
                a if a == self.append => Some(Append),
                a if a == self.extend => Some(Extend),
                a if a == self.pop => Some(Pop),
                a if a == self.index => Some(Index),
                a if a == self.count => Some(Count),
                _ => None,
            },
            Value::Dict(_) => match attr {
                a if a == self.get => Some(Get),
                a if a == self.keys => Some(Keys),
                a if a == self.values => Some(Values),
                a if a == self.items => Some(Items),
                a if a == self.update => Some(Update),
                a if a == self.pop => Some(Pop),
                _ => None,
            },
            Value::Str(_) => match attr {
                a if a == self.upper => Some(Upper),
                a if a == self.lower => Some(Lower),
                a if a == self.strip => Some(Strip),
                a if a == self.split => Some(Split),
                a if a == self.join => Some(Join),
                a if a == self.replace => Some(Replace),
                a if a == self.startswith => Some(Startswith),
                a if a == self.endswith => Some(Endswith),
                a if a == self.format => Some(Format),
                a if a == self.count => Some(Count),
                _ => None,
            },
            _ => None,
        }
    }
}

/// One monomorphic inline-cache entry for a `mod.attr` site: valid while
/// the access still hits the *same* namespace object at the *same*
/// generation (any `set`/`del` bumps the generation and kills the entry).
struct IcEntry {
    ns: Namespace,
    generation: u64,
    value: Value,
}

/// Which execution tier runs module bodies and function code.
///
/// [`Engine::Vm`] (the default) compiles the resolved IR into the compact
/// bytecode of [`crate::bytecode`] and runs its dispatch loop;
/// [`Engine::Tree`] walks the resolved AST directly and is retained as the
/// differential reference (`--engine tree`). Both tiers are byte-identical
/// in observable behavior: stdout, exceptions, meter ticks and simulated
/// allocations, and observed accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Compiled-bytecode dispatch loop (the default tier).
    #[default]
    Vm,
    /// Tree-walking reference evaluator.
    Tree,
}

/// Hit/miss counters for one `mod.attr` inline-cache site (see
/// [`Interpreter::enable_ic_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcSiteStats {
    /// Lookups served from a valid cache entry.
    pub hits: u64,
    /// Lookups that fell back to the namespace (cold site, generation
    /// bump, or a different module behind the same site).
    pub misses: u64,
}

/// Inline-cache counters split by execution phase. Replayed init
/// snapshots never reach `attr_lookup`, so folding init-frame lookups
/// into one total would make hit rates depend on whether
/// `init_snapshots` is on; live-frame counters are replay-invariant.
#[derive(Debug, Default)]
struct IcStatsRecorder {
    /// Per-site counters for live (handler) execution: `import_depth == 0`.
    live: HashMap<u32, IcSiteStats, SymbolHashBuilder>,
    /// Aggregate counters for module-init execution: `import_depth > 0`.
    init: IcSiteStats,
}

/// Default per-run step budget (statements). Debloated candidate programs
/// can in pathological cases loop forever; the budget turns that into a
/// deterministic [`ExcKind::ResourceExhausted`] failure the oracle rejects.
pub const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

/// A pylite interpreter instance.
///
/// Each interpreter is fully isolated: its own `sys.modules`, meter and
/// output buffers. λ-trim spawns a fresh interpreter per profiling run and
/// per DD probe — the equivalent of the paper's per-phase process spawning
/// (§7, "Module isolation").
#[derive(Debug)]
pub struct Interpreter {
    /// The virtual filesystem of modules.
    pub registry: Registry,
    /// Cost model constants.
    pub cost: CostModel,
    /// Virtual clock and simulated memory.
    pub meter: Meter,
    /// Captured `print` output, one entry per line.
    pub stdout: Vec<String>,
    /// Captured external-service calls (`__lt_extcall__`).
    pub extcalls: Vec<String>,
    /// Recorded module-body executions with marginal costs.
    pub import_events: Vec<ImportEvent>,
    /// Maximum number of statements executed before aborting.
    pub step_limit: u64,
    /// Execution tier for module bodies and function calls.
    pub engine: Engine,
    observed: HashSet<(Symbol, Symbol), SymbolHashBuilder>,
    modules: HashMap<String, Rc<ModuleObj>>,
    builtins: Namespace,
    import_depth: usize,
    interner: Arc<Interner>,
    syms: CommonSyms,
    native_syms: NativeSyms,
    ics: HashMap<u32, IcEntry, SymbolHashBuilder>,
    ic_stats: Option<IcStatsRecorder>,
    /// Recycled VM frames: nested bytecode calls pop a frame here instead
    /// of allocating fresh operand-stack/iterator vectors per invocation.
    pub(crate) vm_frames: Vec<crate::bytecode::VmFrame>,
    /// Init-snapshot recorder. `None` (the default) disables both capture
    /// and replay; the oracle enables it so DD probes can reuse module-body
    /// executions via the registry's shared [`crate::snapshot::SnapshotStore`].
    snap: Option<Box<SnapRecorder>>,
}

impl std::fmt::Debug for CommonSyms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CommonSyms")
    }
}

impl std::fmt::Debug for NativeSyms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("NativeSyms")
    }
}

impl std::fmt::Debug for IcEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IcEntry")
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl Interpreter {
    /// Create an interpreter over a registry.
    pub fn new(registry: Registry) -> Self {
        let interner = Arc::clone(registry.interner());
        let builtins = Namespace::new();
        for b in Builtin::all() {
            builtins.set(interner.intern(b.name()), Value::Builtin(*b));
        }
        for name in ExcKind::builtin_names() {
            builtins.set(
                interner.intern(name),
                Value::ExcClass(ExcKind::from_class_name(name)),
            );
        }
        let syms = CommonSyms::new(&interner);
        let native_syms = NativeSyms::new(&interner);
        Interpreter {
            registry,
            cost: CostModel::default(),
            meter: Meter::new(),
            stdout: Vec::new(),
            extcalls: Vec::new(),
            import_events: Vec::new(),
            step_limit: DEFAULT_STEP_LIMIT,
            engine: Engine::default(),
            observed: HashSet::default(),
            modules: HashMap::new(),
            builtins,
            import_depth: 0,
            interner,
            syms,
            native_syms,
            ics: HashMap::default(),
            ic_stats: None,
            vm_frames: Vec::new(),
            snap: None,
        }
    }

    /// Turn on init-snapshot record/replay. Fresh module-body executions are
    /// captured into the registry's shared [`crate::snapshot::SnapshotStore`];
    /// later imports whose content fingerprint, import cone and cost model
    /// match a stored snapshot replay it byte-identically (namespaces, stdout,
    /// extcalls, import events and meter deltas) instead of re-running the
    /// body. Off by default: plain `exec_main` users get live execution.
    pub fn enable_init_snapshots(&mut self) {
        if self.snap.is_none() {
            self.snap = Some(Box::new(SnapRecorder::new()));
        }
    }

    /// Turn on per-site inline-cache hit/miss counting. Off by default:
    /// the counters cost a branch plus a hash update per `mod.attr` read,
    /// so only benchmarking harnesses should enable them.
    pub fn enable_ic_stats(&mut self) {
        self.ic_stats = Some(IcStatsRecorder::default());
    }

    /// Per-site inline-cache counters for live (handler) execution, if
    /// enabled. Keys are the resolved-IR attribute-site ids shared by
    /// both engines. Lookups made while a module init is on the import
    /// stack are excluded — see [`Interpreter::ic_init_totals`].
    pub fn ic_site_stats(&self) -> Option<&HashMap<u32, IcSiteStats, SymbolHashBuilder>> {
        self.ic_stats.as_ref().map(|s| &s.live)
    }

    /// Total live-execution inline-cache `(hits, misses)` across all
    /// sites (zeros when counting is disabled). Invariant under init-
    /// snapshot replay: replayed inits skip `attr_lookup` entirely, so
    /// only counting `import_depth == 0` frames keeps replay-on and
    /// replay-off totals equal on the same live work.
    pub fn ic_totals(&self) -> (u64, u64) {
        match &self.ic_stats {
            None => (0, 0),
            Some(stats) => stats
                .live
                .values()
                .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses)),
        }
    }

    /// Aggregate inline-cache `(hits, misses)` incurred during module
    /// initialization (`import_depth > 0`); zeros when counting is
    /// disabled. Reported separately because init-snapshot replay
    /// legitimately drives this to zero.
    pub fn ic_init_totals(&self) -> (u64, u64) {
        match &self.ic_stats {
            None => (0, 0),
            Some(stats) => (stats.init.hits, stats.init.misses),
        }
    }

    /// Every `(module, attribute)` read observed at runtime: direct
    /// attribute lookups, `getattr`-family calls and `from`-imports. The
    /// dynamic ground truth that static analysis must under-approximate.
    pub fn observed_accesses(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (module, attr) in &self.observed {
            out.entry(self.interner.resolve(*module).to_string())
                .or_default()
                .insert(self.interner.resolve(*attr).to_string());
        }
        out
    }

    /// Execute a program as the `__main__` module and return its module
    /// object (whose namespace holds the handler).
    ///
    /// # Errors
    ///
    /// Any uncaught pylite exception, including parse errors surfaced as
    /// [`ExcKind::ImportError`].
    pub fn exec_main(&mut self, source: &str) -> Result<Rc<ModuleObj>, PyErr> {
        enum Body {
            Tree(crate::resolved::RProgram),
            Vm(std::sync::Arc<crate::bytecode::CodeObj>),
        }
        let body = match self.engine {
            Engine::Tree => {
                let program = crate::parser::parse(source)
                    .map_err(|e| PyErr::new(ExcKind::ImportError, format!("__main__: {e}")))?;
                Body::Tree(resolve_program(&program, &self.interner))
            }
            // `__main__` is not a registry module, but its bytecode still
            // gets a shared content-keyed slot: every DD probe runs the
            // identical app source, so all but the first skip the parse,
            // resolve and compile passes entirely.
            Engine::Vm => Body::Vm(
                self.registry
                    .compile_main(source)
                    .map_err(|e| PyErr::new(ExcKind::ImportError, format!("__main__: {e}")))?,
            ),
        };
        let module = Rc::new(ModuleObj {
            name: "__main__".into(),
            name_sym: self.interner.intern("__main__"),
            tracked: self.registry.contains("__main__"),
            ns: Namespace::new(),
        });
        module.ns.set(self.syms.name, Value::str("__main__"));
        self.modules.insert("__main__".into(), module.clone());
        self.snap_note_load("__main__");
        let mut env = Env {
            globals: module.ns.clone(),
            locals: None,
            global_decls: HashSet::default(),
            module: Rc::from("__main__"),
        };
        match body {
            Body::Tree(resolved) => self.exec_block(&resolved.body, &mut env)?,
            Body::Vm(code) => self.vm_exec_block(&code, &mut env)?,
        }
        Ok(module)
    }

    /// Call a function bound at top level of `__main__` (the Lambda handler).
    ///
    /// # Errors
    ///
    /// [`ExcKind::NameError`] if the handler is not bound, or any exception
    /// the handler raises.
    pub fn call_handler(
        &mut self,
        handler: &str,
        event: Value,
        context: Value,
    ) -> Result<Value, PyErr> {
        let main = self
            .modules
            .get("__main__")
            .cloned()
            .ok_or_else(|| PyErr::new(ExcKind::RuntimeError, "no __main__ module executed"))?;
        // A name that was never interned cannot key any namespace, so a
        // failed lookup is exactly "not defined".
        let func = self
            .interner
            .lookup(handler)
            .and_then(|sym| main.ns.get(sym))
            .ok_or_else(|| {
                PyErr::new(
                    ExcKind::NameError,
                    format!("handler `{handler}` is not defined"),
                )
            })?;
        self.call_value(func, vec![event, context], vec![])
    }

    /// The loaded module object for `name`, if imported.
    pub fn module(&self, name: &str) -> Option<Rc<ModuleObj>> {
        self.modules.get(name).cloned()
    }

    /// Names of all loaded modules (sorted).
    pub fn loaded_modules(&self) -> Vec<String> {
        let mut v: Vec<String> = self.modules.keys().cloned().collect();
        v.sort();
        v
    }

    /// Import a module by dotted name (public entry for tests/tools).
    ///
    /// # Errors
    ///
    /// [`ExcKind::ImportError`] if the module is missing or fails to parse,
    /// or any exception its body raises.
    pub fn import_module(&mut self, dotted: &str) -> Result<Rc<ModuleObj>, PyErr> {
        if let Some(m) = self.modules.get(dotted) {
            let m = m.clone();
            // A cache hit on a module loaded before an in-progress capture
            // started means that capture's closure is incomplete.
            self.snap_on_cache_hit(dotted);
            return Ok(m);
        }
        if !self.registry.contains(dotted) {
            return Err(PyErr::new(
                ExcKind::ImportError,
                format!("No module named '{dotted}'"),
            ));
        }
        // Import the parent package first (CPython semantics).
        let parent = dotted.rsplit_once('.').map(|(p, _)| p.to_owned());
        if let Some(p) = &parent {
            self.import_module(p)?;
        }
        if self.snap.is_some() {
            if let Some(m) = self.try_replay_import(dotted) {
                self.bind_into_parent(&parent, dotted, &m);
                return Ok(m);
            }
            self.registry.snapshot_store().record_miss();
        }
        enum Body {
            Tree(Arc<crate::resolved::RProgram>),
            Vm(Arc<crate::bytecode::CodeObj>),
        }
        let body = match self.engine {
            Engine::Tree => Body::Tree(
                self.registry
                    .resolve_module(dotted)
                    .map_err(|e| PyErr::new(ExcKind::ImportError, format!("{dotted}: {e}")))?,
            ),
            Engine::Vm => Body::Vm(
                self.registry
                    .compile_module(dotted)
                    .map_err(|e| PyErr::new(ExcKind::ImportError, format!("{dotted}: {e}")))?,
            ),
        };
        self.meter.tick(self.cost.import_ns);
        self.meter.alloc(self.cost.module_base_bytes);
        let module = Rc::new(ModuleObj {
            name: dotted.to_owned(),
            name_sym: self.interner.intern(dotted),
            tracked: true,
            ns: Namespace::new(),
        });
        module.ns.set(self.syms.name, Value::str(dotted));
        module.ns.set(
            self.syms.file,
            Value::str(format!("{}.py", dotted.replace('.', "/"))),
        );
        // Insert before executing the body so cyclic imports observe the
        // partially-initialized module instead of recursing forever.
        self.modules.insert(dotted.to_owned(), module.clone());
        let seq = self.snap_note_load(dotted);
        let depth = self.import_depth;
        let start = self.meter.snapshot();
        self.snap_frame_push(dotted, seq);
        self.import_depth += 1;
        let mut env = Env {
            globals: module.ns.clone(),
            locals: None,
            global_decls: HashSet::default(),
            module: Rc::from(dotted),
        };
        let result = match &body {
            Body::Tree(resolved) => self.exec_block(&resolved.body, &mut env),
            Body::Vm(code) => self.vm_exec_block(code, &mut env),
        };
        self.import_depth -= 1;
        match result {
            Ok(()) => {
                let end = self.meter.snapshot();
                self.snap_frame_finish(dotted, end);
                self.emit_import_event(ImportEvent {
                    module: dotted.to_owned(),
                    depth,
                    time_ns: end.0 - start.0,
                    mem_bytes: end.1 - start.1,
                });
                self.bind_into_parent(&parent, dotted, &module);
                Ok(module)
            }
            Err(e) => {
                self.snap_frame_abort();
                self.modules.remove(dotted);
                self.snap_note_unload(dotted);
                Err(e)
            }
        }
    }

    /// Bind a freshly imported submodule as an attribute of its parent
    /// package (`import a.b` makes `b` visible on `a`).
    fn bind_into_parent(&mut self, parent: &Option<String>, dotted: &str, module: &Rc<ModuleObj>) {
        if let (Some(p), Some((_, leaf))) = (parent, dotted.rsplit_once('.')) {
            if let Some(pm) = self.modules.get(p).cloned() {
                let leaf_sym = self.interner.intern(leaf);
                let is_new = pm.ns.set(leaf_sym, Value::Module(module.clone())).is_none();
                if is_new {
                    self.meter.alloc(self.cost.binding_bytes);
                }
                // The parent was loaded before this frame started, so an
                // in-progress capture just saw a foreign write.
                self.snap_on_module_write(p);
            }
        }
    }
}

// -- init-snapshot record/replay ------------------------------------------
//
// See `crate::snapshot` for the data model. The interpreter's side is:
// every fresh `import_module` body pushes a recording frame; effects
// (stdout, extcalls, import events, observed accesses) are logged flat
// across nested frames; a clean frame pop walks the freshly-loaded subtree
// into an `InitSnapshot` stored in the registry's shared `SnapshotStore`;
// and a later import with a matching key replays the snapshot instead of
// executing the body.

impl Interpreter {
    /// Note that `name` is now in `sys.modules`; returns its load sequence
    /// number (the capture-frame closure boundary). Zero when disabled.
    fn snap_note_load(&mut self, name: &str) -> u64 {
        match &mut self.snap {
            Some(rec) => rec.note_load(name),
            None => 0,
        }
    }

    /// Forget a module removed from `sys.modules` after a failed import.
    fn snap_note_unload(&mut self, name: &str) {
        if let Some(rec) = &mut self.snap {
            rec.note_unload(name);
        }
    }

    /// A `sys.modules` cache hit on `name`: frames that began after `name`
    /// was loaded closed over pre-frame state → not replayable.
    fn snap_on_cache_hit(&mut self, name: &str) {
        if let Some(rec) = &mut self.snap {
            rec.mark_pre_frame(name);
        }
    }

    /// A write into module `name`'s namespace: frames that `name` predates
    /// just mutated foreign state → not replayable.
    fn snap_on_module_write(&mut self, name: &str) {
        if let Some(rec) = &mut self.snap {
            rec.mark_pre_frame(name);
        }
    }

    /// Append a stdout line, logging it when a capture frame is active.
    pub(crate) fn emit_stdout(&mut self, line: String) {
        if let Some(rec) = &mut self.snap {
            if !rec.frames.is_empty() {
                rec.log.push(LogEvent::Stdout(line.clone()));
            }
        }
        self.stdout.push(line);
    }

    /// Append an extcall line, logging it when a capture frame is active.
    pub(crate) fn emit_extcall(&mut self, line: String) {
        if let Some(rec) = &mut self.snap {
            if !rec.frames.is_empty() {
                rec.log.push(LogEvent::Extcall(line.clone()));
            }
        }
        self.extcalls.push(line);
    }

    /// Record an `ImportEvent`, logging it when a capture frame is active.
    fn emit_import_event(&mut self, ev: ImportEvent) {
        if let Some(rec) = &mut self.snap {
            if !rec.frames.is_empty() {
                rec.log.push(LogEvent::Import {
                    module: ev.module.clone(),
                    depth: ev.depth,
                    time_ns: ev.time_ns,
                    mem_bytes: ev.mem_bytes,
                });
            }
        }
        self.import_events.push(ev);
    }

    /// Log an observed `(module, attr)` access while a capture is active.
    /// Deduped per innermost frame: the same binding touched first by
    /// attribute lookup and again by namespace iteration (a star import
    /// materializing a lazy shell) logs exactly once.
    fn snap_log_access(&mut self, module: Symbol, attr: Symbol) {
        if let Some(rec) = &mut self.snap {
            if let Some(frame) = rec.frames.last_mut() {
                if frame.seen.insert((module, attr)) {
                    rec.log.push(LogEvent::Access(module, attr));
                }
            }
        }
    }

    /// Open a recording frame for a fresh import of `dotted` (just after
    /// the constant import costs and the `sys.modules` insert, i.e. at the
    /// same meter boundary as the live `ImportEvent` measurement).
    fn snap_frame_push(&mut self, dotted: &str, seq: u64) {
        let clock = self.meter.clock_ns();
        let mem = self.meter.mem_bytes();
        let steps = self.meter.steps;
        let depth = self.import_depth;
        if let Some(rec) = &mut self.snap {
            let log_start = rec.log.len();
            rec.frames.push(crate::snapshot::SnapFrame {
                module: dotted.to_owned(),
                start_seq: seq,
                log_start,
                base_depth: depth,
                clock_start: clock,
                mem_start: mem,
                steps_start: steps,
                violated: false,
                seen: HashSet::new(),
            });
        }
    }

    /// Discard the top recording frame after a failed import. The popped
    /// frame's log entries stay in the outer slice, so its seen set merges
    /// into the new innermost frame to keep dedup exact.
    fn snap_frame_abort(&mut self) {
        if let Some(rec) = &mut self.snap {
            if let Some(popped) = rec.frames.pop() {
                if let Some(outer) = rec.frames.last_mut() {
                    outer.seen.extend(popped.seen);
                }
            }
            if rec.frames.is_empty() {
                rec.log.clear();
            }
        }
    }

    /// Pop the top recording frame after a successful body run and, when
    /// every gate passes, capture the freshly-loaded subtree as an
    /// [`InitSnapshot`] in the shared store. `end` is the meter snapshot
    /// taken at the live `ImportEvent` boundary.
    fn snap_frame_finish(&mut self, dotted: &str, end: (u64, u64)) {
        let steps_now = self.meter.steps;
        let Some(rec) = &mut self.snap else { return };
        let Some(frame) = rec.frames.pop() else {
            return;
        };
        debug_assert_eq!(frame.module, dotted);
        'capture: {
            if frame.violated {
                break 'capture;
            }
            let store = Arc::clone(self.registry.snapshot_store());
            if store.is_denied(dotted) {
                break 'capture;
            }
            let Some(module_fp) = self.registry.module_fingerprint(dotted) else {
                break 'capture;
            };
            if store.is_ineligible(dotted, module_fp) {
                break 'capture;
            }
            // The captured subtree: everything loaded since the frame
            // opened, in load order. Index 0 is the module itself.
            let mut closure: Vec<(u64, String)> = rec
                .load_seq
                .iter()
                .filter(|&(_, &seq)| seq >= frame.start_seq)
                .map(|(name, &seq)| (seq, name.clone()))
                .collect();
            closure.sort();
            debug_assert_eq!(closure.first().map(|(_, n)| n.as_str()), Some(dotted));
            let mut deps = Vec::with_capacity(closure.len());
            let mut mods = Vec::with_capacity(closure.len());
            let mut keyed = true;
            for (_, name) in &closure {
                match (
                    self.registry.module_fingerprint(name),
                    self.modules.get(name),
                ) {
                    (Some(fp), Some(m)) if !store.is_denied(name) => {
                        deps.push((name.clone(), fp));
                        mods.push(m.clone());
                    }
                    _ => {
                        keyed = false;
                        break;
                    }
                }
            }
            if !keyed {
                break 'capture;
            }
            let mut builder = SnapshotBuilder::new(&mods);
            let mut smods = Vec::with_capacity(mods.len());
            let mut walkable = true;
            for m in &mods {
                match builder.snap_module(m) {
                    Some(sm) => smods.push(sm),
                    None => {
                        walkable = false;
                        break;
                    }
                }
            }
            if !walkable {
                store.mark_ineligible(dotted, module_fp);
                break 'capture;
            }
            let log = rec.log[frame.log_start..]
                .iter()
                .map(|ev| match ev {
                    LogEvent::Stdout(s) => SnapEvent::Stdout(s.clone()),
                    LogEvent::Extcall(s) => SnapEvent::Extcall(s.clone()),
                    LogEvent::Import {
                        module,
                        depth,
                        time_ns,
                        mem_bytes,
                    } => SnapEvent::Import {
                        module: module.clone(),
                        rel_depth: depth - frame.base_depth,
                        time_ns: *time_ns,
                        mem_bytes: *mem_bytes,
                    },
                    LogEvent::Access(m, a) => SnapEvent::Access(*m, *a),
                })
                .collect();
            store.insert(
                dotted,
                InitSnapshot {
                    module_fp,
                    deps,
                    cost: self.cost.clone(),
                    time_ns: end.0 - frame.clock_start,
                    mem_bytes: end.1 - frame.mem_start,
                    steps: steps_now - frame.steps_start,
                    log,
                    modules: smods,
                    arena: builder.finish(),
                },
            );
        }
        // The finished frame's log entries remain in the enclosing slice,
        // so its seen set merges outward to keep dedup exact there too.
        if let Some(outer) = rec.frames.last_mut() {
            outer.seen.extend(frame.seen);
        }
        if rec.frames.is_empty() {
            rec.log.clear();
        }
    }

    /// Try to answer a fresh import of `dotted` by replaying a stored
    /// snapshot. Returns the module on success; `None` falls back to live
    /// execution (poisoning any entry replay found inconsistent).
    fn try_replay_import(&mut self, dotted: &str) -> Option<Rc<ModuleObj>> {
        let store = Arc::clone(self.registry.snapshot_store());
        if store.is_denied(dotted) {
            return None;
        }
        let module_fp = self.registry.module_fingerprint(dotted)?;
        'candidates: for entry in store.candidates(dotted) {
            if entry.module_fp != module_fp || entry.cost != self.cost {
                continue;
            }
            // Exact step-budget equivalence: steps grow monotonically and
            // the live check is strict `>` after each increment, so live
            // execution completes iff the final total stays ≤ the limit.
            if self.meter.steps.saturating_add(entry.steps) > self.step_limit {
                continue;
            }
            for (dep, fp) in &entry.deps {
                if self.modules.contains_key(dep)
                    || store.is_denied(dep)
                    || self.registry.module_fingerprint(dep) != Some(*fp)
                {
                    continue 'candidates;
                }
            }
            // Structural soundness was vetted when the entry entered the
            // store, so rehydration cannot fault; only a recording-order
            // mismatch (first module is not the requested one) poisons.
            let mods = rehydrate(&entry);
            if mods.first().map(|m| m.name.as_str()) != Some(dotted) {
                store.poison(dotted, &entry);
                continue;
            }
            let module = mods[0].clone();
            self.commit_replay(&entry, &mods);
            store.record_hit();
            return Some(module);
        }
        None
    }

    /// Apply a rehydrated snapshot to this interpreter, reproducing every
    /// observable of the live execution: `sys.modules` entries, meter
    /// deltas at the live boundaries, stdout/extcall lines, import events
    /// (self last, exactly as live nesting orders them) and observed
    /// accesses. Runs inside any enclosing recording frame, so replayed
    /// inits compose into outer captures.
    fn commit_replay(&mut self, entry: &InitSnapshot, mods: &[Rc<ModuleObj>]) {
        self.meter.tick(self.cost.import_ns);
        self.meter.alloc(self.cost.module_base_bytes);
        for m in mods {
            self.modules.insert(m.name.clone(), m.clone());
            self.snap_note_load(&m.name);
        }
        self.meter.tick(entry.time_ns);
        self.meter.alloc(entry.mem_bytes);
        self.meter.steps += entry.steps;
        let base_depth = self.import_depth;
        for ev in &entry.log {
            match ev {
                SnapEvent::Stdout(s) => self.emit_stdout(s.clone()),
                SnapEvent::Extcall(s) => self.emit_extcall(s.clone()),
                SnapEvent::Import {
                    module,
                    rel_depth,
                    time_ns,
                    mem_bytes,
                } => self.emit_import_event(ImportEvent {
                    module: module.clone(),
                    depth: base_depth + rel_depth,
                    time_ns: *time_ns,
                    mem_bytes: *mem_bytes,
                }),
                SnapEvent::Access(m, a) => {
                    self.observed.insert((*m, *a));
                    self.snap_log_access(*m, *a);
                }
            }
        }
        self.emit_import_event(ImportEvent {
            module: mods[0].name.clone(),
            depth: base_depth,
            time_ns: entry.time_ns,
            mem_bytes: entry.mem_bytes,
        });
    }
}

// -- statements -----------------------------------------------------------

impl Interpreter {
    fn exec_block(&mut self, body: &[RStmt], env: &mut Env) -> Result<(), PyErr> {
        for stmt in body {
            match self.exec_stmt(stmt, env)? {
                Flow::Normal => {}
                _ => {
                    return Err(PyErr::new(
                        ExcKind::RuntimeError,
                        "return/break/continue outside of function or loop",
                    ))
                }
            }
        }
        Ok(())
    }

    fn exec_suite(&mut self, body: &[RStmt], env: &mut Env) -> Result<Flow, PyErr> {
        for stmt in body {
            match self.exec_stmt(stmt, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &RStmt, env: &mut Env) -> Result<Flow, PyErr> {
        self.meter.steps += 1;
        if self.meter.steps > self.step_limit {
            return Err(PyErr::new(
                ExcKind::ResourceExhausted,
                format!("step limit of {} exceeded", self.step_limit),
            ));
        }
        self.meter.tick(self.cost.stmt_ns);
        match stmt {
            RStmt::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            RStmt::Assign { targets, value } => {
                let v = self.eval(value, env)?;
                if let [target] = targets.as_slice() {
                    self.assign_target(target, v, env)?;
                } else {
                    for t in targets {
                        self.assign_target(t, v.clone(), env)?;
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::AugAssign { target, op, value } => {
                let current = self.eval(target, env)?;
                let rhs = self.eval(value, env)?;
                let combined = self.binary_op(*op, current, rhs)?;
                self.assign_target(target, combined, env)?;
                Ok(Flow::Normal)
            }
            RStmt::If { branches, orelse } => {
                for (test, body) in branches {
                    if self.eval(test, env)?.truthy() {
                        return self.exec_suite(body, env);
                    }
                }
                self.exec_suite(orelse, env)
            }
            RStmt::While { test, body } => {
                while self.eval(test, env)?.truthy() {
                    match self.exec_suite(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    self.meter.steps += 1;
                    if self.meter.steps > self.step_limit {
                        return Err(PyErr::new(
                            ExcKind::ResourceExhausted,
                            "step limit exceeded in while loop",
                        ));
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::For {
                targets,
                iter,
                body,
            } => {
                let iterable = self.eval(iter, env)?;
                let items = self.iter_values(&iterable)?;
                for item in items {
                    if let [target] = targets.as_slice() {
                        self.bind_name(*target, item, env);
                    } else {
                        let parts = self.iter_values(&item)?;
                        if parts.len() != targets.len() {
                            return Err(PyErr::new(
                                ExcKind::ValueError,
                                format!(
                                    "cannot unpack {} values into {} loop targets",
                                    parts.len(),
                                    targets.len()
                                ),
                            ));
                        }
                        for (t, v) in targets.iter().zip(parts) {
                            self.bind_name(*t, v, env);
                        }
                    }
                    match self.exec_suite(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            RStmt::FuncDef(f) => {
                let func = self.make_function(f, env)?;
                self.meter
                    .alloc(self.cost.func_base_bytes + self.cost.func_stmt_bytes * f.stmt_count);
                self.bind_name(f.sym, func, env);
                Ok(Flow::Normal)
            }
            RStmt::ClassDef(c) => {
                let class = self.make_class(c, env)?;
                self.meter.alloc(self.cost.class_base_bytes);
                self.bind_name(c.sym, class, env);
                Ok(Flow::Normal)
            }
            RStmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::None,
                };
                Ok(Flow::Return(v))
            }
            RStmt::Pass => Ok(Flow::Normal),
            RStmt::Break => Ok(Flow::Break),
            RStmt::Continue => Ok(Flow::Continue),
            RStmt::Import { items } => {
                self.exec_import(items, env)?;
                Ok(Flow::Normal)
            }
            RStmt::FromImport { module, names } => {
                self.exec_from_import(module, names, env)?;
                Ok(Flow::Normal)
            }
            RStmt::Raise(e) => {
                let err = match e {
                    None => PyErr::new(ExcKind::RuntimeError, "re-raise outside except"),
                    Some(expr) => {
                        let v = self.eval(expr, env)?;
                        self.value_to_exception(v)?
                    }
                };
                Err(err)
            }
            RStmt::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                let outcome = self.exec_suite(body, env);
                let result = match outcome {
                    Ok(flow) => {
                        if matches!(flow, Flow::Normal) && !orelse.is_empty() {
                            self.exec_suite(orelse, env)
                        } else {
                            Ok(flow)
                        }
                    }
                    Err(err) => {
                        // ResourceExhausted is not catchable: it models the
                        // platform killing the function.
                        if matches!(err.kind, ExcKind::ResourceExhausted) {
                            Err(err)
                        } else {
                            let mut handled = None;
                            for h in handlers {
                                let matches = match &h.exc_type {
                                    None => true,
                                    Some(class) => err.matches_handler(class),
                                };
                                if matches {
                                    if let Some(name) = h.name {
                                        self.bind_name(
                                            name,
                                            Value::ExcValue(Rc::new(err.clone())),
                                            env,
                                        );
                                    }
                                    handled = Some(self.exec_suite(&h.body, env));
                                    break;
                                }
                            }
                            handled.unwrap_or(Err(err))
                        }
                    }
                };
                if !finalbody.is_empty() {
                    // `finally` runs regardless; its own error wins.
                    match self.exec_suite(finalbody, env)? {
                        Flow::Normal => {}
                        flow => return Ok(flow),
                    }
                }
                result
            }
            RStmt::Global(names) => {
                for n in names {
                    env.global_decls.insert(*n);
                }
                Ok(Flow::Normal)
            }
            RStmt::Assert { test, msg } => {
                if !self.eval(test, env)?.truthy() {
                    let message = match msg {
                        Some(m) => py_str(&self.eval(m, env)?),
                        None => String::new(),
                    };
                    return Err(PyErr::new(ExcKind::AssertionError, message));
                }
                Ok(Flow::Normal)
            }
            RStmt::Del(target) => {
                self.exec_del(target, env)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Execute an `import a.b [as c][, ...]` clause list. Shared verbatim
    /// by the tree-walker and the bytecode VM's `Import` instruction, so
    /// binding and allocation behavior cannot diverge between tiers.
    pub(crate) fn exec_import(
        &mut self,
        items: &[crate::resolved::RImportItem],
        env: &mut Env,
    ) -> Result<(), PyErr> {
        for item in items {
            let module = self.import_module(&item.module)?;
            match &item.top {
                None => self.bind_name(item.bind, Value::Module(module), env),
                Some(top) => {
                    let top_module = self
                        .modules
                        .get(&**top)
                        .cloned()
                        .expect("top package loaded by import_module");
                    self.bind_name(item.bind, Value::Module(top_module), env);
                }
            }
        }
        Ok(())
    }

    /// Execute a `from module import ...` statement (shared by both
    /// engines, like [`Interpreter::exec_import`]).
    pub(crate) fn exec_from_import(
        &mut self,
        module: &str,
        names: &[crate::resolved::RFromName],
        env: &mut Env,
    ) -> Result<(), PyErr> {
        let m = self.import_module(module)?;
        for name in names {
            let (name, bind) = match name {
                crate::resolved::RFromName::Star => {
                    // Bind every public (non-underscore) name of the
                    // module into the importing scope.
                    for key in m.ns.key_syms() {
                        if self.interner.resolve(key).starts_with('_') {
                            continue;
                        }
                        self.record_access(&m, key);
                        let v = m.ns.get(key).expect("key from snapshot");
                        self.bind_name(key, v, env);
                    }
                    continue;
                }
                crate::resolved::RFromName::Named { name, bind } => (*name, *bind),
            };
            self.record_access(&m, name);
            let v = match m.ns.get(name) {
                Some(v) => v,
                None => {
                    // `from pkg import sub` where sub is a submodule.
                    let name_text = self.interner.resolve(name);
                    let sub = format!("{module}.{name_text}");
                    if self.registry.contains(&sub) {
                        Value::Module(self.import_module(&sub)?)
                    } else {
                        return Err(PyErr::new(
                            ExcKind::ImportError,
                            format!("cannot import name '{name_text}' from '{module}'"),
                        ));
                    }
                }
            };
            self.bind_name(bind, v, env);
        }
        Ok(())
    }

    /// Execute a `del target` statement (shared by both engines; the
    /// attribute form tree-evaluates its object expression, which is the
    /// cost reference the VM must match — `del` is rare enough that the
    /// bytecode tier simply reuses it).
    pub(crate) fn exec_del(&mut self, target: &RExpr, env: &mut Env) -> Result<(), PyErr> {
        match target {
            RExpr::Name(n) => {
                let removed = match &env.locals {
                    Some(locals) if !env.global_decls.contains(n) => locals.remove(*n),
                    _ => {
                        // Deleting a module-level name mutates the owning
                        // module's namespace.
                        self.snap_on_module_write(&env.module);
                        env.globals.remove(*n)
                    }
                };
                if removed.is_none() {
                    return Err(PyErr::new(
                        ExcKind::NameError,
                        format!("name '{}' is not defined", self.interner.resolve(*n)),
                    ));
                }
            }
            RExpr::Attribute { value, attr, .. } => {
                let obj = self.eval(value, env)?;
                // `NsMap::remove` bumps the namespace generation,
                // invalidating any inline cache for this attribute.
                let removed = match &obj {
                    Value::Module(m) => {
                        let removed = m.ns.remove(*attr);
                        self.snap_on_module_write(&m.name);
                        removed
                    }
                    Value::Instance(i) => i.borrow().ns.remove(*attr),
                    Value::Class(c) => c.ns.remove(*attr),
                    _ => None,
                };
                if removed.is_none() {
                    return Err(PyErr::attribute_error(format!(
                        "cannot delete attribute '{}'",
                        self.interner.resolve(*attr)
                    )));
                }
            }
            _ => {
                return Err(PyErr::type_error("unsupported del target"));
            }
        }
        Ok(())
    }
}

// -- definitions, bindings, expressions -----------------------------------

impl Interpreter {
    pub(crate) fn value_to_exception(&mut self, v: Value) -> Result<PyErr, PyErr> {
        match v {
            Value::ExcValue(e) => Ok((*e).clone()),
            Value::ExcClass(kind) => Ok(PyErr::new(kind, "")),
            Value::Instance(inst) => {
                let inst = inst.borrow();
                if !inst.class.is_exception {
                    return Err(PyErr::type_error("exceptions must derive from Exception"));
                }
                let message = inst
                    .ns
                    .get(self.syms.message)
                    .map(|m| py_str(&m))
                    .unwrap_or_default();
                let mut chain = Vec::new();
                collect_class_chain(&inst.class, &mut chain);
                let mut err = PyErr::new(ExcKind::Custom(inst.class.name.clone()), message);
                err.class_chain = chain;
                Ok(err)
            }
            Value::Class(c) if c.is_exception => {
                let mut chain = Vec::new();
                collect_class_chain(&c, &mut chain);
                let mut err = PyErr::new(ExcKind::Custom(c.name.clone()), "");
                err.class_chain = chain;
                Ok(err)
            }
            other => Err(PyErr::type_error(format!(
                "exceptions must derive from Exception, not {}",
                other.type_name()
            ))),
        }
    }

    pub(crate) fn make_function(&mut self, f: &Arc<RFuncDef>, env: &Env) -> Result<Value, PyErr> {
        let mut defaults = Vec::with_capacity(f.params.len());
        for p in &f.params {
            defaults.push(match &p.default {
                Some(d) => {
                    let mut env2 = Env {
                        globals: env.globals.clone(),
                        locals: env.locals.clone(),
                        global_decls: HashSet::default(),
                        module: env.module.clone(),
                    };
                    Some(self.eval(d, &mut env2)?)
                }
                None => None,
            });
        }
        Ok(Value::Func(Rc::new(PyFunc {
            code: Arc::clone(f),
            defaults,
            globals: env.globals.clone(),
            module: env.module.clone(),
        })))
    }

    pub(crate) fn make_class(&mut self, c: &RClassDef, env: &mut Env) -> Result<Value, PyErr> {
        let mut bases = Vec::new();
        let mut is_exception = false;
        for path in &c.bases {
            // Bases may be dotted references (`class Net(nn.Module)`).
            let mut base_val = self.lookup_name(path[0], env)?;
            for part in &path[1..] {
                base_val = self.attr_lookup(&base_val, *part, None)?;
            }
            match base_val {
                Value::Class(b) => {
                    if b.is_exception {
                        is_exception = true;
                    }
                    bases.push(b);
                }
                Value::ExcClass(_) => {
                    is_exception = true;
                }
                other => {
                    return Err(PyErr::type_error(format!(
                        "base class must be a class, not {}",
                        other.type_name()
                    )))
                }
            }
        }
        let class_ns = Namespace::new();
        let mut class_env = Env {
            globals: env.globals.clone(),
            locals: Some(class_ns.clone()),
            global_decls: HashSet::default(),
            module: env.module.clone(),
        };
        self.exec_block(&c.body, &mut class_env)?;
        self.meter
            .alloc(self.cost.binding_bytes * class_ns.len() as u64);
        Ok(Value::Class(Rc::new(PyClass {
            name: c.name.to_string(),
            bases,
            ns: class_ns,
            is_exception,
        })))
    }

    /// Record a runtime module-attribute read (registry modules only;
    /// `__name__` is import-machinery bookkeeping, not library surface).
    fn record_access(&mut self, module: &ModuleObj, attr: Symbol) {
        if attr == self.syms.name || !module.tracked {
            return;
        }
        self.observed.insert((module.name_sym, attr));
        self.snap_log_access(module.name_sym, attr);
    }

    pub(crate) fn bind_name(&mut self, name: Symbol, value: Value, env: &mut Env) {
        // A `global`-declared write from inside a function call mutates
        // the declaring module's namespace, which may predate an active
        // recording frame. (Module-level binds hit the module's own,
        // intra-frame namespace and need no check.)
        if env.locals.is_some() && env.global_decls.contains(&name) {
            self.snap_on_module_write(&env.module);
        }
        let target_ns = match &env.locals {
            Some(locals) if !env.global_decls.contains(&name) => locals,
            _ => &env.globals,
        };
        let is_new = target_ns.set(name, value).is_none();
        if is_new {
            self.meter.alloc(self.cost.binding_bytes);
        }
    }

    fn assign_target(&mut self, target: &RExpr, value: Value, env: &mut Env) -> Result<(), PyErr> {
        match target {
            RExpr::Name(n) => {
                self.bind_name(*n, value, env);
                Ok(())
            }
            RExpr::Attribute {
                value: obj, attr, ..
            } => {
                let obj = self.eval(obj, env)?;
                self.set_attr(&obj, *attr, value)
            }
            RExpr::Subscript { value: obj, index } => {
                let obj = self.eval(obj, env)?;
                let idx = self.eval(index, env)?;
                self.set_item(&obj, idx, value)
            }
            RExpr::Tuple(targets) | RExpr::List(targets) => {
                let items = self.iter_values(&value)?;
                if items.len() != targets.len() {
                    return Err(PyErr::new(
                        ExcKind::ValueError,
                        format!(
                            "cannot unpack {} values into {} targets",
                            items.len(),
                            targets.len()
                        ),
                    ));
                }
                for (t, v) in targets.iter().zip(items) {
                    self.assign_target(t, v, env)?;
                }
                Ok(())
            }
            _ => Err(PyErr::type_error("invalid assignment target")),
        }
    }

    /// Store `value` as an attribute of `obj` (the `obj.attr = value`
    /// path, shared by both engines).
    pub(crate) fn set_attr(
        &mut self,
        obj: &Value,
        attr: Symbol,
        value: Value,
    ) -> Result<(), PyErr> {
        // `NsMap::set` bumps the namespace generation, so inline
        // caches for this attribute are invalidated automatically.
        match obj {
            Value::Module(m) => {
                if m.ns.set(attr, value).is_none() {
                    self.meter.alloc(self.cost.binding_bytes);
                }
                self.snap_on_module_write(&m.name);
            }
            Value::Instance(i) => {
                if i.borrow().ns.set(attr, value).is_none() {
                    self.meter.alloc(self.cost.binding_bytes);
                }
            }
            Value::Class(c) => {
                if c.ns.set(attr, value).is_none() {
                    self.meter.alloc(self.cost.binding_bytes);
                }
            }
            other => {
                return Err(PyErr::attribute_error(format!(
                    "'{}' object attribute '{}' is read-only",
                    other.type_name(),
                    self.interner.resolve(attr)
                )))
            }
        }
        Ok(())
    }

    /// Store `value` at `obj[idx]` (shared by both engines).
    pub(crate) fn set_item(&mut self, obj: &Value, idx: Value, value: Value) -> Result<(), PyErr> {
        match obj {
            Value::List(items) => {
                let i = as_index(&idx, items.borrow().len())?;
                items.borrow_mut()[i] = value;
                Ok(())
            }
            Value::Dict(pairs) => {
                let mut pairs = pairs.borrow_mut();
                for (k, v) in pairs.iter_mut() {
                    if py_eq(k, &idx) {
                        *v = value;
                        return Ok(());
                    }
                }
                pairs.push((idx, value));
                self.meter.alloc(self.cost.element_bytes);
                Ok(())
            }
            other => Err(PyErr::type_error(format!(
                "'{}' object does not support item assignment",
                other.type_name()
            ))),
        }
    }

    pub(crate) fn lookup_name(&mut self, name: Symbol, env: &Env) -> Result<Value, PyErr> {
        if let Some(locals) = &env.locals {
            if !env.global_decls.contains(&name) {
                if let Some(v) = locals.get(name) {
                    return Ok(v);
                }
            }
        }
        if let Some(v) = env.globals.get(name) {
            return Ok(v);
        }
        if let Some(v) = self.builtins.get(name) {
            return Ok(v);
        }
        Err(PyErr::new(
            ExcKind::NameError,
            format!("name '{}' is not defined", self.interner.resolve(name)),
        ))
    }

    fn eval(&mut self, e: &RExpr, env: &mut Env) -> Result<Value, PyErr> {
        self.meter.tick(self.cost.expr_node_ns);
        match e {
            RExpr::None => Ok(Value::None),
            RExpr::True => Ok(Value::Bool(true)),
            RExpr::False => Ok(Value::Bool(false)),
            RExpr::Int(v) => Ok(Value::Int(*v)),
            RExpr::Float(v) => Ok(Value::Float(*v)),
            RExpr::Str(s) => {
                self.meter.alloc(self.cost.str_char_bytes * s.len() as u64);
                Ok(Value::Str(Arc::clone(s)))
            }
            RExpr::Name(n) => self.lookup_name(*n, env),
            RExpr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for i in items {
                    out.push(self.eval(i, env)?);
                }
                self.meter
                    .alloc(self.cost.element_bytes * items.len() as u64);
                Ok(Value::list(out))
            }
            RExpr::Tuple(items) => {
                let mut out = Vec::with_capacity(items.len());
                for i in items {
                    out.push(self.eval(i, env)?);
                }
                self.meter
                    .alloc(self.cost.element_bytes * items.len() as u64);
                Ok(Value::tuple(out))
            }
            RExpr::Dict(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    out.push((self.eval(k, env)?, self.eval(v, env)?));
                }
                self.meter
                    .alloc(self.cost.element_bytes * 2 * pairs.len() as u64);
                Ok(Value::dict(out))
            }
            RExpr::Attribute { value, attr, site } => {
                let obj = self.eval(value, env)?;
                self.attr_lookup(&obj, *attr, Some(*site))
            }
            RExpr::Subscript { value, index } => {
                let obj = self.eval(value, env)?;
                let idx = self.eval(index, env)?;
                self.get_item(&obj, &idx)
            }
            RExpr::Call { func, args, kwargs } => {
                let f = self.eval(func, env)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env)?);
                }
                let mut kwv = Vec::with_capacity(kwargs.len());
                for (k, v) in kwargs {
                    kwv.push((*k, self.eval(v, env)?));
                }
                self.call_value(f, argv, kwv)
            }
            RExpr::Unary { op, operand } => {
                let v = self.eval(operand, env)?;
                unary_op(*op, v)
            }
            RExpr::Binary { left, op, right } => {
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                self.binary_op(*op, l, r)
            }
            RExpr::Bool { op, values } => match op {
                BoolOp::And => {
                    let mut last = Value::Bool(true);
                    for v in values {
                        last = self.eval(v, env)?;
                        if !last.truthy() {
                            return Ok(last);
                        }
                    }
                    Ok(last)
                }
                BoolOp::Or => {
                    let mut last = Value::Bool(false);
                    for v in values {
                        last = self.eval(v, env)?;
                        if last.truthy() {
                            return Ok(last);
                        }
                    }
                    Ok(last)
                }
            },
            RExpr::Compare { left, ops } => {
                let mut lhs = self.eval(left, env)?;
                for (op, rhs_expr) in ops {
                    let rhs = self.eval(rhs_expr, env)?;
                    if !self.compare(*op, &lhs, &rhs)? {
                        return Ok(Value::Bool(false));
                    }
                    lhs = rhs;
                }
                Ok(Value::Bool(true))
            }
            RExpr::Conditional { test, body, orelse } => {
                if self.eval(test, env)?.truthy() {
                    self.eval(body, env)
                } else {
                    self.eval(orelse, env)
                }
            }
            RExpr::ListComp {
                element,
                targets,
                iter,
                cond,
            } => {
                let iterable = self.eval(iter, env)?;
                let items = self.iter_values(&iterable)?;
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    self.meter.steps += 1;
                    if self.meter.steps > self.step_limit {
                        return Err(PyErr::new(
                            ExcKind::ResourceExhausted,
                            "step limit exceeded in comprehension",
                        ));
                    }
                    if let [target] = targets.as_slice() {
                        self.bind_name(*target, item, env);
                    } else {
                        let parts = self.iter_values(&item)?;
                        if parts.len() != targets.len() {
                            return Err(PyErr::new(
                                ExcKind::ValueError,
                                "comprehension target unpack mismatch",
                            ));
                        }
                        for (t, v) in targets.iter().zip(parts) {
                            self.bind_name(*t, v, env);
                        }
                    }
                    if let Some(c) = cond {
                        if !self.eval(c, env)?.truthy() {
                            continue;
                        }
                    }
                    out.push(self.eval(element, env)?);
                }
                self.meter.alloc(self.cost.element_bytes * out.len() as u64);
                Ok(Value::list(out))
            }
            RExpr::Slice { value, start, stop } => {
                let v = self.eval(value, env)?;
                let start = match start {
                    Some(e) => Some(self.eval(e, env)?),
                    None => None,
                };
                let stop = match stop {
                    Some(e) => Some(self.eval(e, env)?),
                    None => None,
                };
                self.slice_value(&v, start.as_ref(), stop.as_ref())
            }
        }
    }
}

// -- operators, attributes, calls -----------------------------------------

impl Interpreter {
    pub(crate) fn binary_op(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, PyErr> {
        use Value::*;
        let type_err = |l: &Value, r: &Value| {
            PyErr::type_error(format!(
                "unsupported operand type(s) for {}: '{}' and '{}'",
                op.symbol(),
                l.type_name(),
                r.type_name()
            ))
        };
        // Promote bools to ints for arithmetic.
        let lift = |v: Value| match v {
            Bool(b) => Int(b as i64),
            other => other,
        };
        let (l, r) = (lift(l), lift(r));
        match (op, &l, &r) {
            (BinOp::Add, Str(a), Str(b)) => {
                self.meter
                    .alloc(self.cost.str_char_bytes * (a.len() + b.len()) as u64);
                Ok(Value::str(format!("{a}{b}")))
            }
            (BinOp::Add, List(a), List(b)) => {
                let mut out = a.borrow().clone();
                out.extend(b.borrow().iter().cloned());
                self.meter.alloc(self.cost.element_bytes * out.len() as u64);
                Ok(Value::list(out))
            }
            (BinOp::Mul, Str(s), Int(n)) | (BinOp::Mul, Int(n), Str(s)) => {
                let n = (*n).max(0) as usize;
                self.meter
                    .alloc(self.cost.str_char_bytes * (s.len() * n) as u64);
                Ok(Value::str(s.repeat(n)))
            }
            (BinOp::Mul, List(items), Int(n)) | (BinOp::Mul, Int(n), List(items)) => {
                let n = (*n).max(0) as usize;
                let src = items.borrow();
                let mut out = Vec::with_capacity(src.len() * n);
                for _ in 0..n {
                    out.extend(src.iter().cloned());
                }
                self.meter.alloc(self.cost.element_bytes * out.len() as u64);
                Ok(Value::list(out))
            }
            (_, Int(a), Int(b)) => {
                let (a, b) = (*a, *b);
                match op {
                    BinOp::Add => Ok(Int(a.wrapping_add(b))),
                    BinOp::Sub => Ok(Int(a.wrapping_sub(b))),
                    BinOp::Mul => Ok(Int(a.wrapping_mul(b))),
                    BinOp::Div => {
                        if b == 0 {
                            Err(PyErr::new(ExcKind::ZeroDivisionError, "division by zero"))
                        } else {
                            Ok(Float(a as f64 / b as f64))
                        }
                    }
                    BinOp::FloorDiv => {
                        if b == 0 {
                            Err(PyErr::new(ExcKind::ZeroDivisionError, "division by zero"))
                        } else {
                            Ok(Int(a.div_euclid(b)))
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            Err(PyErr::new(ExcKind::ZeroDivisionError, "modulo by zero"))
                        } else {
                            Ok(Int(a.rem_euclid(b)))
                        }
                    }
                    BinOp::Pow => {
                        if b >= 0 {
                            Ok(Int(a.pow(b.min(63) as u32)))
                        } else {
                            Ok(Float((a as f64).powi(b as i32)))
                        }
                    }
                }
            }
            (_, l @ (Int(_) | Float(_)), r @ (Int(_) | Float(_))) => {
                let a = as_f64(l);
                let b = as_f64(r);
                match op {
                    BinOp::Add => Ok(Float(a + b)),
                    BinOp::Sub => Ok(Float(a - b)),
                    BinOp::Mul => Ok(Float(a * b)),
                    BinOp::Div => {
                        if b == 0.0 {
                            Err(PyErr::new(
                                ExcKind::ZeroDivisionError,
                                "float division by zero",
                            ))
                        } else {
                            Ok(Float(a / b))
                        }
                    }
                    BinOp::FloorDiv => {
                        if b == 0.0 {
                            Err(PyErr::new(
                                ExcKind::ZeroDivisionError,
                                "float floor division by zero",
                            ))
                        } else {
                            Ok(Float((a / b).floor()))
                        }
                    }
                    BinOp::Mod => {
                        if b == 0.0 {
                            Err(PyErr::new(ExcKind::ZeroDivisionError, "float modulo"))
                        } else {
                            Ok(Float(a.rem_euclid(b)))
                        }
                    }
                    BinOp::Pow => Ok(Float(a.powf(b))),
                }
            }
            _ => Err(type_err(&l, &r)),
        }
    }

    pub(crate) fn compare(&mut self, op: CmpOp, l: &Value, r: &Value) -> Result<bool, PyErr> {
        match op {
            CmpOp::Eq => Ok(py_eq(l, r)),
            CmpOp::Ne => Ok(!py_eq(l, r)),
            CmpOp::Is => Ok(py_is(l, r)),
            CmpOp::IsNot => Ok(!py_is(l, r)),
            CmpOp::In => self.contains(r, l),
            CmpOp::NotIn => Ok(!self.contains(r, l)?),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let ord = match (l, r) {
                    (Value::Int(a), Value::Int(b)) => a.partial_cmp(b),
                    (Value::Str(a), Value::Str(b)) => a.partial_cmp(b),
                    (
                        a @ (Value::Int(_) | Value::Float(_)),
                        b @ (Value::Int(_) | Value::Float(_)),
                    ) => as_f64(a).partial_cmp(&as_f64(b)),
                    _ => None,
                };
                let ord = ord.ok_or_else(|| {
                    PyErr::type_error(format!(
                        "'{}' not supported between instances of '{}' and '{}'",
                        op.symbol(),
                        l.type_name(),
                        r.type_name()
                    ))
                })?;
                Ok(match op {
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                })
            }
        }
    }

    fn contains(&mut self, container: &Value, needle: &Value) -> Result<bool, PyErr> {
        match container {
            Value::List(items) => Ok(items.borrow().iter().any(|v| py_eq(v, needle))),
            Value::Tuple(items) => Ok(items.iter().any(|v| py_eq(v, needle))),
            Value::Dict(pairs) => Ok(pairs.borrow().iter().any(|(k, _)| py_eq(k, needle))),
            Value::Str(s) => match needle {
                Value::Str(sub) => Ok(s.contains(&**sub)),
                _ => Err(PyErr::type_error("'in <string>' requires string operand")),
            },
            other => Err(PyErr::type_error(format!(
                "argument of type '{}' is not iterable",
                other.type_name()
            ))),
        }
    }

    pub(crate) fn iter_values(&mut self, v: &Value) -> Result<Vec<Value>, PyErr> {
        match v {
            Value::List(items) => Ok(items.borrow().clone()),
            Value::Tuple(items) => Ok((**items).clone()),
            Value::Dict(pairs) => Ok(pairs.borrow().iter().map(|(k, _)| k.clone()).collect()),
            Value::Str(s) => Ok(s.chars().map(|c| Value::str(c.to_string())).collect()),
            other => Err(PyErr::type_error(format!(
                "'{}' object is not iterable",
                other.type_name()
            ))),
        }
    }

    /// Symbol-keyed attribute lookup following pylite's object model.
    /// Raises `AttributeError` — the signal λ-trim's fallback wrapper
    /// watches for. `site` is the resolved-IR inline-cache site id for
    /// `mod.attr` expressions; runtime lookups (`getattr`) pass `None`.
    pub(crate) fn attr_lookup(
        &mut self,
        obj: &Value,
        attr: Symbol,
        site: Option<u32>,
    ) -> Result<Value, PyErr> {
        match obj {
            Value::Module(m) => {
                // Observed-access recording must fire on cache hits too:
                // the profiler's ground truth is every read, not every miss.
                self.record_access(m, attr);
                let generation = m.ns.generation();
                if let Some(site) = site {
                    if let Some(entry) = self.ics.get(&site) {
                        if entry.generation == generation && entry.ns.same(&m.ns) {
                            let value = entry.value.clone();
                            if let Some(stats) = &mut self.ic_stats {
                                if self.import_depth == 0 {
                                    stats.live.entry(site).or_default().hits += 1;
                                } else {
                                    stats.init.hits += 1;
                                }
                            }
                            return Ok(value);
                        }
                    }
                    if let Some(stats) = &mut self.ic_stats {
                        if self.import_depth == 0 {
                            stats.live.entry(site).or_default().misses += 1;
                        } else {
                            stats.init.misses += 1;
                        }
                    }
                }
                match m.ns.get(attr) {
                    Some(v) => {
                        if let Some(site) = site {
                            self.ics.insert(
                                site,
                                IcEntry {
                                    ns: m.ns.clone(),
                                    generation,
                                    value: v.clone(),
                                },
                            );
                        }
                        Ok(v)
                    }
                    None => Err(PyErr::attribute_error(format!(
                        "module '{}' has no attribute '{}'",
                        m.name,
                        self.interner.resolve(attr)
                    ))),
                }
            }
            Value::List(_) | Value::Dict(_) | Value::Str(_) => {
                match self.native_syms.resolve(obj, attr) {
                    Some(method) => Ok(Value::NativeMethod {
                        recv: Box::new(obj.clone()),
                        method,
                    }),
                    None => Err(PyErr::attribute_error(format!(
                        "'{}' object has no attribute '{}'",
                        obj.type_name(),
                        self.interner.resolve(attr)
                    ))),
                }
            }
            Value::Instance(i) => {
                let inst = i.borrow();
                if let Some(v) = inst.ns.get(attr) {
                    return Ok(v);
                }
                if let Some(v) = inst.class.lookup(attr) {
                    if let Value::Func(f) = &v {
                        return Ok(Value::BoundMethod {
                            recv: Box::new(obj.clone()),
                            func: f.clone(),
                        });
                    }
                    return Ok(v);
                }
                Err(PyErr::attribute_error(format!(
                    "'{}' object has no attribute '{}'",
                    inst.class.name,
                    self.interner.resolve(attr)
                )))
            }
            Value::Class(c) => c.lookup(attr).ok_or_else(|| {
                PyErr::attribute_error(format!(
                    "type object '{}' has no attribute '{}'",
                    c.name,
                    self.interner.resolve(attr)
                ))
            }),
            Value::ExcValue(e) => {
                if attr == self.syms.message || attr == self.syms.args {
                    Ok(Value::str(&e.message))
                } else {
                    Err(PyErr::attribute_error(format!(
                        "'{}' object has no attribute '{}'",
                        e.kind.class_name(),
                        self.interner.resolve(attr)
                    )))
                }
            }
            other => Err(PyErr::attribute_error(format!(
                "'{}' object has no attribute '{}'",
                other.type_name(),
                self.interner.resolve(attr)
            ))),
        }
    }

    /// Attribute lookup with a runtime-supplied name (`getattr`, tooling).
    ///
    /// Module receivers intern the name so missing-attribute probes are
    /// still recorded as observed accesses; for other receivers a name
    /// that was never interned cannot be bound anywhere (all namespaces
    /// are symbol-keyed and every native/builtin name is pre-interned),
    /// so the lookup fails without growing the interner.
    ///
    /// # Errors
    ///
    /// `AttributeError` — the signal λ-trim's fallback wrapper watches for.
    pub fn get_attribute(&mut self, obj: &Value, attr: &str) -> Result<Value, PyErr> {
        if let Value::Module(_) = obj {
            let sym = self.interner.intern(attr);
            return self.attr_lookup(obj, sym, None);
        }
        match self.interner.lookup(attr) {
            Some(sym) => self.attr_lookup(obj, sym, None),
            None => Err(match obj {
                Value::Instance(i) => PyErr::attribute_error(format!(
                    "'{}' object has no attribute '{attr}'",
                    i.borrow().class.name
                )),
                Value::Class(c) => PyErr::attribute_error(format!(
                    "type object '{}' has no attribute '{attr}'",
                    c.name
                )),
                Value::ExcValue(e) => PyErr::attribute_error(format!(
                    "'{}' object has no attribute '{attr}'",
                    e.kind.class_name()
                )),
                other => PyErr::attribute_error(format!(
                    "'{}' object has no attribute '{attr}'",
                    other.type_name()
                )),
            }),
        }
    }

    /// Resolve a slice bound to a clamped index within `len`.
    fn slice_bound(bound: Option<&Value>, len: usize, default: i64) -> Result<i64, PyErr> {
        let raw = match bound {
            None => default,
            Some(Value::Int(i)) => *i,
            Some(Value::Bool(b)) => *b as i64,
            Some(other) => {
                return Err(PyErr::type_error(format!(
                    "slice indices must be integers, not {}",
                    other.type_name()
                )))
            }
        };
        let adjusted = if raw < 0 { raw + len as i64 } else { raw };
        Ok(adjusted.clamp(0, len as i64))
    }

    pub(crate) fn slice_value(
        &mut self,
        v: &Value,
        start: Option<&Value>,
        stop: Option<&Value>,
    ) -> Result<Value, PyErr> {
        match v {
            Value::List(items) => {
                let items = items.borrow();
                let len = items.len();
                let s = Self::slice_bound(start, len, 0)? as usize;
                let e = Self::slice_bound(stop, len, len as i64)? as usize;
                let out: Vec<Value> = if s < e {
                    items[s..e].to_vec()
                } else {
                    Vec::new()
                };
                self.meter.alloc(self.cost.element_bytes * out.len() as u64);
                Ok(Value::list(out))
            }
            Value::Tuple(items) => {
                let len = items.len();
                let s = Self::slice_bound(start, len, 0)? as usize;
                let e = Self::slice_bound(stop, len, len as i64)? as usize;
                let out: Vec<Value> = if s < e {
                    items[s..e].to_vec()
                } else {
                    Vec::new()
                };
                Ok(Value::tuple(out))
            }
            Value::Str(text) => {
                let chars: Vec<char> = text.chars().collect();
                let len = chars.len();
                let s = Self::slice_bound(start, len, 0)? as usize;
                let e = Self::slice_bound(stop, len, len as i64)? as usize;
                let out: String = if s < e {
                    chars[s..e].iter().collect()
                } else {
                    String::new()
                };
                Ok(Value::str(out))
            }
            other => Err(PyErr::type_error(format!(
                "'{}' object is not sliceable",
                other.type_name()
            ))),
        }
    }

    pub(crate) fn get_item(&mut self, obj: &Value, idx: &Value) -> Result<Value, PyErr> {
        match obj {
            Value::List(items) => {
                let items = items.borrow();
                let i = as_index(idx, items.len())?;
                Ok(items[i].clone())
            }
            Value::Tuple(items) => {
                let i = as_index(idx, items.len())?;
                Ok(items[i].clone())
            }
            Value::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let i = as_index(idx, chars.len())?;
                Ok(Value::str(chars[i].to_string()))
            }
            Value::Dict(pairs) => pairs
                .borrow()
                .iter()
                .find(|(k, _)| py_eq(k, idx))
                .map(|(_, v)| v.clone())
                .ok_or_else(|| PyErr::new(ExcKind::KeyError, py_repr(idx))),
            other => Err(PyErr::type_error(format!(
                "'{}' object is not subscriptable",
                other.type_name()
            ))),
        }
    }

    /// Call any callable value.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-callables or arity mismatches, plus whatever the
    /// callee raises.
    pub fn call_value(
        &mut self,
        f: Value,
        args: Vec<Value>,
        kwargs: Vec<(Symbol, Value)>,
    ) -> Result<Value, PyErr> {
        match f {
            Value::Func(func) => self.call_pyfunc(&func, args, kwargs),
            Value::BoundMethod { recv, func } => {
                let mut all = Vec::with_capacity(args.len() + 1);
                all.push(*recv);
                all.extend(args);
                self.call_pyfunc(&func, all, kwargs)
            }
            Value::Builtin(b) => self.call_builtin(b, args, kwargs),
            Value::NativeMethod { recv, method } => self.call_native(&recv, method, args),
            Value::Class(class) => {
                let instance = Rc::new(RefCell::new(PyInstance {
                    class: class.clone(),
                    ns: Namespace::new(),
                }));
                self.meter.alloc(self.cost.class_base_bytes / 4);
                let value = Value::Instance(instance);
                if let Some(Value::Func(init)) = class.lookup(self.syms.init) {
                    let mut all = Vec::with_capacity(args.len() + 1);
                    all.push(value.clone());
                    all.extend(args);
                    self.call_pyfunc(&init, all, kwargs)?;
                } else if !args.is_empty() && class.is_exception {
                    // Exception-style constructor: first arg is the message.
                    if let Value::Instance(i) = &value {
                        i.borrow()
                            .ns
                            .set(self.syms.message, Value::str(py_str(&args[0])));
                    }
                }
                Ok(value)
            }
            Value::ExcClass(kind) => {
                let message = args.first().map(py_str).unwrap_or_default();
                Ok(Value::ExcValue(Rc::new(PyErr::new(kind, message))))
            }
            other => Err(PyErr::type_error(format!(
                "'{}' object is not callable",
                other.type_name()
            ))),
        }
    }

    fn call_pyfunc(
        &mut self,
        func: &Rc<PyFunc>,
        args: Vec<Value>,
        kwargs: Vec<(Symbol, Value)>,
    ) -> Result<Value, PyErr> {
        self.meter.tick(self.cost.call_ns);
        let params = &func.code.params;
        let locals = Namespace::new();
        let mut assigned = vec![false; params.len()];
        let positional = args.len();
        if positional > params.len() {
            return Err(PyErr::type_error(format!(
                "{}() takes {} positional arguments but {} were given",
                func.name(),
                params.len(),
                positional
            )));
        }
        for (i, v) in args.into_iter().enumerate() {
            locals.set(params[i].sym, v);
            assigned[i] = true;
        }
        for (k, v) in kwargs {
            match params.iter().position(|p| p.sym == k) {
                Some(i) => {
                    if assigned[i] {
                        return Err(PyErr::type_error(format!(
                            "{}() got multiple values for argument '{}'",
                            func.name(),
                            self.interner.resolve(k)
                        )));
                    }
                    locals.set(k, v);
                    assigned[i] = true;
                }
                None => {
                    return Err(PyErr::type_error(format!(
                        "{}() got an unexpected keyword argument '{}'",
                        func.name(),
                        self.interner.resolve(k)
                    )))
                }
            }
        }
        for (i, p) in params.iter().enumerate() {
            if !assigned[i] {
                match &func.defaults[i] {
                    Some(d) => {
                        locals.set(p.sym, d.clone());
                    }
                    None => {
                        return Err(PyErr::type_error(format!(
                            "{}() missing required argument: '{}'",
                            func.name(),
                            p.name
                        )))
                    }
                }
            }
        }
        let mut env = Env {
            globals: func.globals.clone(),
            locals: Some(locals),
            global_decls: HashSet::default(),
            module: func.module.clone(),
        };
        let flow = match self.engine {
            Engine::Tree => self.exec_suite(&func.code.body, &mut env)?,
            Engine::Vm => {
                let code = crate::bytecode::func_code(&func.code);
                self.vm_run_suite(&code, &mut env)?
            }
        };
        match flow {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::None),
        }
    }
}

// -- builtins and native methods ------------------------------------------

impl Interpreter {
    fn call_builtin(
        &mut self,
        b: Builtin,
        args: Vec<Value>,
        _kwargs: Vec<(Symbol, Value)>,
    ) -> Result<Value, PyErr> {
        let arity_err =
            |want: &str| PyErr::type_error(format!("{}() expects {want} argument(s)", b.name()));
        match b {
            Builtin::Print => {
                let line = args.iter().map(py_str).collect::<Vec<_>>().join(" ");
                self.meter.tick(2_000);
                self.emit_stdout(line);
                Ok(Value::None)
            }
            Builtin::Len => {
                let v = args.first().ok_or_else(|| arity_err("1"))?;
                let n = match v {
                    Value::Str(s) => s.chars().count(),
                    Value::List(l) => l.borrow().len(),
                    Value::Tuple(t) => t.len(),
                    Value::Dict(d) => d.borrow().len(),
                    other => {
                        return Err(PyErr::type_error(format!(
                            "object of type '{}' has no len()",
                            other.type_name()
                        )))
                    }
                };
                Ok(Value::Int(n as i64))
            }
            Builtin::Range => {
                let ints: Vec<i64> = args
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) => Ok(*i),
                        Value::Bool(b) => Ok(*b as i64),
                        other => Err(PyErr::type_error(format!(
                            "range() argument must be int, not {}",
                            other.type_name()
                        ))),
                    })
                    .collect::<Result<_, _>>()?;
                let (start, stop, step) = match ints.as_slice() {
                    [stop] => (0, *stop, 1),
                    [start, stop] => (*start, *stop, 1),
                    [start, stop, step] => (*start, *stop, *step),
                    _ => return Err(arity_err("1 to 3")),
                };
                if step == 0 {
                    return Err(PyErr::new(
                        ExcKind::ValueError,
                        "range() arg 3 must not be zero",
                    ));
                }
                let mut out = Vec::new();
                let mut i = start;
                while (step > 0 && i < stop) || (step < 0 && i > stop) {
                    out.push(Value::Int(i));
                    i += step;
                    if out.len() > 10_000_000 {
                        return Err(PyErr::new(ExcKind::ResourceExhausted, "range too large"));
                    }
                }
                Ok(Value::list(out))
            }
            Builtin::Str => Ok(Value::str(args.first().map(py_str).unwrap_or_default())),
            Builtin::Repr => {
                let v = args.first().ok_or_else(|| arity_err("1"))?;
                Ok(Value::str(py_repr(v)))
            }
            Builtin::Int => {
                let v = args.first().ok_or_else(|| arity_err("1"))?;
                match v {
                    Value::Int(i) => Ok(Value::Int(*i)),
                    Value::Bool(b) => Ok(Value::Int(*b as i64)),
                    Value::Float(f) => Ok(Value::Int(*f as i64)),
                    Value::Str(s) => s.trim().parse::<i64>().map(Value::Int).map_err(|_| {
                        PyErr::new(
                            ExcKind::ValueError,
                            format!("invalid literal for int(): {s:?}"),
                        )
                    }),
                    other => Err(PyErr::type_error(format!(
                        "int() argument must not be '{}'",
                        other.type_name()
                    ))),
                }
            }
            Builtin::Float => {
                let v = args.first().ok_or_else(|| arity_err("1"))?;
                match v {
                    Value::Int(i) => Ok(Value::Float(*i as f64)),
                    Value::Bool(b) => Ok(Value::Float(*b as i64 as f64)),
                    Value::Float(f) => Ok(Value::Float(*f)),
                    Value::Str(s) => s.trim().parse::<f64>().map(Value::Float).map_err(|_| {
                        PyErr::new(
                            ExcKind::ValueError,
                            format!("could not convert string to float: {s:?}"),
                        )
                    }),
                    other => Err(PyErr::type_error(format!(
                        "float() argument must not be '{}'",
                        other.type_name()
                    ))),
                }
            }
            Builtin::Bool => Ok(Value::Bool(
                args.first().map(Value::truthy).unwrap_or(false),
            )),
            Builtin::Abs => {
                let v = args.first().ok_or_else(|| arity_err("1"))?;
                match v {
                    Value::Int(i) => Ok(Value::Int(i.abs())),
                    Value::Float(f) => Ok(Value::Float(f.abs())),
                    other => Err(PyErr::type_error(format!(
                        "bad operand type for abs(): '{}'",
                        other.type_name()
                    ))),
                }
            }
            Builtin::Min | Builtin::Max => {
                let items = if args.len() == 1 {
                    self.iter_values(&args[0])?
                } else {
                    args
                };
                if items.is_empty() {
                    return Err(PyErr::new(ExcKind::ValueError, "empty sequence"));
                }
                let mut best = items[0].clone();
                for v in &items[1..] {
                    let replace = if b == Builtin::Min {
                        self.compare(CmpOp::Lt, v, &best)?
                    } else {
                        self.compare(CmpOp::Gt, v, &best)?
                    };
                    if replace {
                        best = v.clone();
                    }
                }
                Ok(best)
            }
            Builtin::Sum => {
                let items = self.iter_values(args.first().ok_or_else(|| arity_err("1"))?)?;
                let mut acc = Value::Int(0);
                for v in items {
                    acc = self.binary_op(BinOp::Add, acc, v)?;
                }
                Ok(acc)
            }
            Builtin::Round => {
                let v = args.first().ok_or_else(|| arity_err("1 or 2"))?;
                let x = match v {
                    Value::Int(i) => return Ok(Value::Int(*i)),
                    Value::Float(f) => *f,
                    other => {
                        return Err(PyErr::type_error(format!(
                            "type {} doesn't define __round__",
                            other.type_name()
                        )))
                    }
                };
                match args.get(1) {
                    None => Ok(Value::Int(x.round() as i64)),
                    Some(Value::Int(nd)) => {
                        let scale = 10f64.powi(*nd as i32);
                        Ok(Value::Float((x * scale).round() / scale))
                    }
                    Some(other) => Err(PyErr::type_error(format!(
                        "ndigits must be int, not {}",
                        other.type_name()
                    ))),
                }
            }
            Builtin::Sorted => {
                let mut items = self.iter_values(args.first().ok_or_else(|| arity_err("1"))?)?;
                // Simple insertion sort using py comparison (lists are small).
                for i in 1..items.len() {
                    let mut j = i;
                    while j > 0 && self.compare(CmpOp::Lt, &items[j], &items[j - 1])? {
                        items.swap(j, j - 1);
                        j -= 1;
                    }
                }
                Ok(Value::list(items))
            }
            Builtin::Enumerate => {
                let items = self.iter_values(args.first().ok_or_else(|| arity_err("1"))?)?;
                Ok(Value::list(
                    items
                        .into_iter()
                        .enumerate()
                        .map(|(i, v)| Value::tuple(vec![Value::Int(i as i64), v]))
                        .collect(),
                ))
            }
            Builtin::Zip => {
                if args.len() != 2 {
                    return Err(arity_err("2"));
                }
                let a = self.iter_values(&args[0])?;
                let bv = self.iter_values(&args[1])?;
                Ok(Value::list(
                    a.into_iter()
                        .zip(bv)
                        .map(|(x, y)| Value::tuple(vec![x, y]))
                        .collect(),
                ))
            }
            Builtin::Isinstance => {
                if args.len() != 2 {
                    return Err(arity_err("2"));
                }
                Ok(Value::Bool(value_isinstance(&args[0], &args[1])))
            }
            Builtin::Type => {
                let v = args.first().ok_or_else(|| arity_err("1"))?;
                Ok(Value::str(v.class_name()))
            }
            Builtin::Getattr => {
                let obj = args.first().ok_or_else(|| arity_err("2 or 3"))?;
                let name = match args.get(1) {
                    Some(Value::Str(s)) => Arc::clone(s),
                    _ => {
                        return Err(PyErr::type_error(
                            "getattr(): attribute name must be string",
                        ))
                    }
                };
                match self.get_attribute(obj, &name) {
                    Ok(v) => Ok(v),
                    Err(e) if matches!(e.kind, ExcKind::AttributeError) => match args.get(2) {
                        Some(default) => Ok(default.clone()),
                        None => Err(e),
                    },
                    Err(e) => Err(e),
                }
            }
            Builtin::Setattr => {
                if args.len() != 3 {
                    return Err(arity_err("3"));
                }
                let name = match &args[1] {
                    Value::Str(s) => Arc::clone(s),
                    _ => {
                        return Err(PyErr::type_error(
                            "setattr(): attribute name must be string",
                        ))
                    }
                };
                // Interning a brand-new name is fine: the namespace `set`
                // bumps the generation, invalidating any inline cache.
                let sym = self.interner.intern(&name);
                match &args[0] {
                    Value::Module(m) => {
                        m.ns.set(sym, args[2].clone());
                        self.snap_on_module_write(&m.name);
                    }
                    Value::Instance(i) => {
                        i.borrow().ns.set(sym, args[2].clone());
                    }
                    Value::Class(c) => {
                        c.ns.set(sym, args[2].clone());
                    }
                    other => {
                        return Err(PyErr::type_error(format!(
                            "cannot set attributes of '{}'",
                            other.type_name()
                        )))
                    }
                }
                Ok(Value::None)
            }
            Builtin::Hasattr => {
                let obj = args.first().ok_or_else(|| arity_err("2"))?;
                let name = match args.get(1) {
                    Some(Value::Str(s)) => Arc::clone(s),
                    _ => {
                        return Err(PyErr::type_error(
                            "hasattr(): attribute name must be string",
                        ))
                    }
                };
                match self.get_attribute(obj, &name) {
                    Ok(_) => Ok(Value::Bool(true)),
                    Err(e) if matches!(e.kind, ExcKind::AttributeError) => Ok(Value::Bool(false)),
                    Err(e) => Err(e),
                }
            }
            Builtin::List => match args.first() {
                None => Ok(Value::list(vec![])),
                Some(v) => Ok(Value::list(self.iter_values(v)?)),
            },
            Builtin::Tuple => match args.first() {
                None => Ok(Value::tuple(vec![])),
                Some(v) => Ok(Value::tuple(self.iter_values(v)?)),
            },
            Builtin::Dict => match args.first() {
                None => Ok(Value::dict(vec![])),
                Some(Value::Dict(d)) => Ok(Value::dict(d.borrow().clone())),
                Some(v) => {
                    let items = self.iter_values(v)?;
                    let mut pairs = Vec::with_capacity(items.len());
                    for item in items {
                        let kv = self.iter_values(&item)?;
                        if kv.len() != 2 {
                            return Err(PyErr::new(
                                ExcKind::ValueError,
                                "dictionary update sequence element is not length 2",
                            ));
                        }
                        pairs.push((kv[0].clone(), kv[1].clone()));
                    }
                    Ok(Value::dict(pairs))
                }
            },
            Builtin::SimWork => {
                let ms = args.first().map(as_f64).unwrap_or(0.0);
                self.meter.tick(ms_to_ns(ms));
                Ok(Value::None)
            }
            Builtin::SimAlloc => {
                let mb = args.first().map(as_f64).unwrap_or(0.0);
                let bytes = mb_to_bytes(mb);
                self.meter.alloc(bytes);
                Ok(Value::Blob(bytes))
            }
            Builtin::SimExtCall => {
                let parts: Vec<String> = args.iter().map(py_str).collect();
                self.meter.tick(500_000);
                self.emit_extcall(parts.join(":"));
                Ok(Value::None)
            }
        }
    }

    fn call_native(
        &mut self,
        recv: &Value,
        method: NativeMethod,
        args: Vec<Value>,
    ) -> Result<Value, PyErr> {
        use NativeMethod::*;
        self.meter.tick(1_000);
        match (recv, method) {
            (Value::List(items), Append) => {
                let v = args
                    .into_iter()
                    .next()
                    .ok_or_else(|| PyErr::type_error("append() takes exactly one argument"))?;
                items.borrow_mut().push(v);
                self.meter.alloc(self.cost.element_bytes);
                Ok(Value::None)
            }
            (Value::List(items), Extend) => {
                let arg = args
                    .into_iter()
                    .next()
                    .ok_or_else(|| PyErr::type_error("extend() takes exactly one argument"))?;
                let vals = self.iter_values(&arg)?;
                self.meter
                    .alloc(self.cost.element_bytes * vals.len() as u64);
                items.borrow_mut().extend(vals);
                Ok(Value::None)
            }
            (Value::List(items), Pop) => {
                let mut items = items.borrow_mut();
                let idx = match args.first() {
                    None => items.len().checked_sub(1),
                    Some(Value::Int(i)) => {
                        let i = *i;
                        if i < 0 {
                            items.len().checked_sub(i.unsigned_abs() as usize)
                        } else {
                            Some(i as usize)
                        }
                    }
                    Some(other) => {
                        return Err(PyErr::type_error(format!(
                            "pop index must be int, not {}",
                            other.type_name()
                        )))
                    }
                };
                match idx {
                    Some(i) if i < items.len() => Ok(items.remove(i)),
                    _ => Err(PyErr::new(ExcKind::IndexError, "pop from empty list")),
                }
            }
            (Value::List(items), Index) => {
                let needle = args
                    .first()
                    .ok_or_else(|| PyErr::type_error("index() takes exactly one argument"))?;
                items
                    .borrow()
                    .iter()
                    .position(|v| py_eq(v, needle))
                    .map(|i| Value::Int(i as i64))
                    .ok_or_else(|| PyErr::new(ExcKind::ValueError, "value not in list"))
            }
            (Value::List(items), Count) => {
                let needle = args
                    .first()
                    .ok_or_else(|| PyErr::type_error("count() takes exactly one argument"))?;
                let n = items.borrow().iter().filter(|v| py_eq(v, needle)).count();
                Ok(Value::Int(n as i64))
            }
            (Value::Dict(pairs), Get) => {
                let key = args
                    .first()
                    .ok_or_else(|| PyErr::type_error("get() takes at least one argument"))?;
                Ok(pairs
                    .borrow()
                    .iter()
                    .find(|(k, _)| py_eq(k, key))
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| args.get(1).cloned().unwrap_or(Value::None)))
            }
            (Value::Dict(pairs), Keys) => Ok(Value::list(
                pairs.borrow().iter().map(|(k, _)| k.clone()).collect(),
            )),
            (Value::Dict(pairs), Values) => Ok(Value::list(
                pairs.borrow().iter().map(|(_, v)| v.clone()).collect(),
            )),
            (Value::Dict(pairs), Items) => Ok(Value::list(
                pairs
                    .borrow()
                    .iter()
                    .map(|(k, v)| Value::tuple(vec![k.clone(), v.clone()]))
                    .collect(),
            )),
            (Value::Dict(pairs), Update) => {
                let other = match args.first() {
                    Some(Value::Dict(d)) => d.borrow().clone(),
                    _ => return Err(PyErr::type_error("update() requires a dict")),
                };
                let mut pairs = pairs.borrow_mut();
                for (k, v) in other {
                    if let Some(slot) = pairs.iter_mut().find(|(pk, _)| py_eq(pk, &k)) {
                        slot.1 = v;
                    } else {
                        pairs.push((k, v));
                        self.meter.alloc(self.cost.element_bytes);
                    }
                }
                Ok(Value::None)
            }
            (Value::Dict(pairs), Pop) => {
                let key = args
                    .first()
                    .ok_or_else(|| PyErr::type_error("pop() takes at least one argument"))?;
                let mut pairs = pairs.borrow_mut();
                match pairs.iter().position(|(k, _)| py_eq(k, key)) {
                    Some(i) => Ok(pairs.remove(i).1),
                    None => match args.get(1) {
                        Some(default) => Ok(default.clone()),
                        None => Err(PyErr::new(ExcKind::KeyError, py_repr(key))),
                    },
                }
            }
            (Value::Str(s), m) => self.call_str_method(s, m, args),
            _ => Err(PyErr::type_error("bad native method receiver")),
        }
    }

    fn call_str_method(
        &mut self,
        s: &str,
        method: NativeMethod,
        args: Vec<Value>,
    ) -> Result<Value, PyErr> {
        use NativeMethod::*;
        let str_arg = |i: usize| -> Result<String, PyErr> {
            match args.get(i) {
                Some(Value::Str(s)) => Ok(s.to_string()),
                Some(other) => Err(PyErr::type_error(format!(
                    "expected str argument, got {}",
                    other.type_name()
                ))),
                None => Err(PyErr::type_error("missing str argument")),
            }
        };
        match method {
            Upper => Ok(Value::str(s.to_uppercase())),
            Lower => Ok(Value::str(s.to_lowercase())),
            Strip => Ok(Value::str(s.trim())),
            Split => {
                let parts: Vec<Value> = match args.first() {
                    None => s.split_whitespace().map(Value::str).collect(),
                    Some(Value::Str(sep)) => s.split(&**sep).map(Value::str).collect(),
                    Some(other) => {
                        return Err(PyErr::type_error(format!(
                            "sep must be str, not {}",
                            other.type_name()
                        )))
                    }
                };
                Ok(Value::list(parts))
            }
            Join => {
                let items = self.iter_values(
                    args.first()
                        .ok_or_else(|| PyErr::type_error("join() takes exactly one argument"))?,
                )?;
                let mut parts = Vec::with_capacity(items.len());
                for v in items {
                    match v {
                        Value::Str(p) => parts.push(p.to_string()),
                        other => {
                            return Err(PyErr::type_error(format!(
                                "sequence item: expected str, {} found",
                                other.type_name()
                            )))
                        }
                    }
                }
                Ok(Value::str(parts.join(s)))
            }
            Replace => {
                let from = str_arg(0)?;
                let to = str_arg(1)?;
                Ok(Value::str(s.replace(&from, &to)))
            }
            Startswith => Ok(Value::Bool(s.starts_with(&str_arg(0)?))),
            Endswith => Ok(Value::Bool(s.ends_with(&str_arg(0)?))),
            Count => {
                let sub = str_arg(0)?;
                if sub.is_empty() {
                    return Ok(Value::Int(s.chars().count() as i64 + 1));
                }
                Ok(Value::Int(s.matches(&sub).count() as i64))
            }
            Format => {
                let mut out = String::new();
                let mut arg_i = 0usize;
                let mut chars = s.chars().peekable();
                while let Some(c) = chars.next() {
                    if c == '{' && chars.peek() == Some(&'}') {
                        chars.next();
                        let v = args.get(arg_i).ok_or_else(|| {
                            PyErr::new(
                                ExcKind::IndexError,
                                "Replacement index out of range for positional args",
                            )
                        })?;
                        out.push_str(&py_str(v));
                        arg_i += 1;
                    } else {
                        out.push(c);
                    }
                }
                Ok(Value::str(out))
            }
            _ => Err(PyErr::attribute_error("unsupported str method")),
        }
    }
}

/// Python `is` — identity for reference types, value identity for scalars.
fn py_is(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::None, Value::None) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => Arc::ptr_eq(x, y) || x == y,
        (Value::List(x), Value::List(y)) => Rc::ptr_eq(x, y),
        (Value::Dict(x), Value::Dict(y)) => Rc::ptr_eq(x, y),
        (Value::Tuple(x), Value::Tuple(y)) => Rc::ptr_eq(x, y),
        (Value::Func(x), Value::Func(y)) => Rc::ptr_eq(x, y),
        (Value::Class(x), Value::Class(y)) => Rc::ptr_eq(x, y),
        (Value::Instance(x), Value::Instance(y)) => Rc::ptr_eq(x, y),
        (Value::Module(x), Value::Module(y)) => Rc::ptr_eq(x, y),
        (Value::Builtin(x), Value::Builtin(y)) => x == y,
        (Value::ExcClass(x), Value::ExcClass(y)) => x == y,
        _ => false,
    }
}

fn collect_class_chain(class: &Rc<PyClass>, chain: &mut Vec<String>) {
    if !chain.iter().any(|c| c == &class.name) {
        chain.push(class.name.clone());
    }
    for b in &class.bases {
        collect_class_chain(b, chain);
    }
}

fn value_isinstance(v: &Value, class: &Value) -> bool {
    match class {
        Value::Class(c) => match v {
            Value::Instance(i) => i.borrow().class.isa(&c.name),
            _ => false,
        },
        Value::ExcClass(kind) => match v {
            Value::ExcValue(e) => {
                e.matches_handler(kind.class_name()) || kind.class_name() == "Exception"
            }
            Value::Instance(i) => i.borrow().class.is_exception && kind.class_name() == "Exception",
            _ => false,
        },
        Value::Builtin(b) => {
            matches!(
                (b, v),
                (Builtin::Str, Value::Str(_))
                    | (Builtin::Int, Value::Int(_))
                    | (Builtin::Int, Value::Bool(_))
                    | (Builtin::Float, Value::Float(_))
                    | (Builtin::Bool, Value::Bool(_))
                    | (Builtin::List, Value::List(_))
                    | (Builtin::Dict, Value::Dict(_))
                    | (Builtin::Tuple, Value::Tuple(_))
            )
        }
        Value::Tuple(classes) => classes.iter().any(|c| value_isinstance(v, c)),
        _ => false,
    }
}

/// Apply a unary operator (shared by both engines).
pub(crate) fn unary_op(op: UnaryOp, v: Value) -> Result<Value, PyErr> {
    match op {
        UnaryOp::Not => Ok(Value::Bool(!v.truthy())),
        UnaryOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Bool(b) => Ok(Value::Int(-(b as i64))),
            other => Err(PyErr::type_error(format!(
                "bad operand type for unary -: '{}'",
                other.type_name()
            ))),
        },
        UnaryOp::Pos => match v {
            Value::Int(_) | Value::Float(_) | Value::Bool(_) => Ok(v),
            other => Err(PyErr::type_error(format!(
                "bad operand type for unary +: '{}'",
                other.type_name()
            ))),
        },
    }
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        Value::Bool(b) => *b as i64 as f64,
        _ => f64::NAN,
    }
}

fn as_index(idx: &Value, len: usize) -> Result<usize, PyErr> {
    let i = match idx {
        Value::Int(i) => *i,
        Value::Bool(b) => *b as i64,
        other => {
            return Err(PyErr::type_error(format!(
                "indices must be integers, not {}",
                other.type_name()
            )))
        }
    };
    let adjusted = if i < 0 { i + len as i64 } else { i };
    if adjusted < 0 || adjusted as usize >= len {
        return Err(PyErr::new(ExcKind::IndexError, "index out of range"));
    }
    Ok(adjusted as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Interpreter {
        let mut it = Interpreter::new(Registry::new());
        it.exec_main(src).expect("program runs");
        it
    }

    fn run_err(src: &str) -> PyErr {
        let mut it = Interpreter::new(Registry::new());
        it.exec_main(src).expect_err("program should fail")
    }

    fn run_with(mods: &[(&str, &str)], src: &str) -> Interpreter {
        let mut r = Registry::new();
        for (m, s) in mods {
            r.set_module(*m, *s);
        }
        let mut it = Interpreter::new(r);
        it.exec_main(src).expect("program runs");
        it
    }

    #[test]
    fn star_import_binds_public_names() {
        let it = run_with(
            &[("m", "alpha = 1\n_hidden = 2\ndef go():\n    return 3\n")],
            "from m import *\nprint(alpha, go())\n",
        );
        assert_eq!(it.stdout, vec!["1 3"]);
    }

    #[test]
    fn star_import_skips_private_names() {
        let e = {
            let mut r = Registry::new();
            r.set_module("m", "_hidden = 2\n");
            let mut it = Interpreter::new(r);
            it.exec_main("from m import *\nprint(_hidden)\n")
                .expect_err("private name must not be bound")
        };
        assert!(matches!(e.kind, ExcKind::NameError));
    }

    #[test]
    fn dotted_class_bases_resolve_through_modules() {
        let it = run_with(
            &[(
                "nn",
                "class Module:\n    def tag(self):\n        return \"base\"\n",
            )],
            "import nn\nclass Net(nn.Module):\n    pass\nprint(Net().tag())\n",
        );
        assert_eq!(it.stdout, vec!["base"]);
    }

    #[test]
    fn module_attribute_reads_are_observed() {
        let it = run_with(
            &[("m", "alpha = 1\nbeta = 2\ngamma = 3\n")],
            "import m\nfrom m import beta\nx = m.alpha\ny = getattr(m, \"gamma\")\n",
        );
        let seen = it.observed_accesses().get("m").cloned().unwrap_or_default();
        assert!(seen.contains("alpha"), "direct attribute read");
        assert!(seen.contains("beta"), "from-import read");
        assert!(seen.contains("gamma"), "getattr read");
    }

    #[test]
    fn observed_accesses_skip_non_registry_modules() {
        let it = run("x = 1\n");
        assert!(it.observed_accesses().is_empty());
    }

    #[test]
    fn arithmetic_and_print() {
        let it = run("print(1 + 2 * 3)\nprint(7 // 2, 7 % 2, 2 ** 10)\nprint(1 / 2)\n");
        assert_eq!(it.stdout, vec!["7", "3 1 1024", "0.5"]);
    }

    #[test]
    fn string_operations() {
        let it = run(r#"
s = "hello" + " " + "world"
print(s.upper())
print(s.split(" "))
print("-".join(["a", "b", "c"]))
print("x={} y={}".format(1, 2))
print(s.startswith("hello"), s.endswith("!"))
"#);
        assert_eq!(
            it.stdout,
            vec![
                "HELLO WORLD",
                "[\"hello\", \"world\"]",
                "a-b-c",
                "x=1 y=2",
                "True False"
            ]
        );
    }

    #[test]
    fn functions_defaults_and_kwargs() {
        let it = run(
            "def f(a, b=10, c=20):\n    return a + b + c\nprint(f(1))\nprint(f(1, 2))\nprint(f(1, c=3))\n",
        );
        assert_eq!(it.stdout, vec!["31", "23", "14"]);
    }

    #[test]
    fn classes_methods_and_attributes() {
        let it = run(r#"
class Counter:
    def __init__(self, start):
        self.n = start
    def incr(self, by=1):
        self.n += by
        return self.n

c = Counter(10)
c.incr()
c.incr(5)
print(c.n)
"#);
        assert_eq!(it.stdout, vec!["16"]);
    }

    #[test]
    fn inheritance_lookup() {
        let it = run(r#"
class Base:
    def hello(self):
        return "base"
class Child(Base):
    pass
print(Child().hello())
"#);
        assert_eq!(it.stdout, vec!["base"]);
    }

    #[test]
    fn loops_and_control_flow() {
        let it = run(r#"
total = 0
for i in range(10):
    if i == 5:
        continue
    if i == 8:
        break
    total += i
print(total)
n = 0
while n < 3:
    n += 1
print(n)
"#);
        assert_eq!(it.stdout, vec!["23", "3"]);
    }

    #[test]
    fn list_and_dict_methods() {
        let it = run(r#"
xs = [3, 1, 2]
xs.append(0)
print(sorted(xs))
print(xs.index(1), xs.count(2))
d = {"a": 1}
d["b"] = 2
print(d.get("a"), d.get("zz", -1))
print(len(d.keys()), d.items())
"#);
        assert_eq!(
            it.stdout,
            vec!["[0, 1, 2, 3]", "1 1", "1 -1", "2 [(\"a\", 1), (\"b\", 2)]"]
        );
    }

    #[test]
    fn try_except_catches_attribute_error() {
        let it = run(r#"
class A:
    pass
a = A()
try:
    a.missing
except AttributeError as e:
    print("caught")
"#);
        assert_eq!(it.stdout, vec!["caught"]);
    }

    #[test]
    fn uncaught_attribute_error_propagates() {
        let e = run_err("x = 1\nx.missing\n");
        assert!(matches!(e.kind, ExcKind::AttributeError));
    }

    #[test]
    fn raise_and_catch_custom_exception() {
        let it = run(r#"
class MyError(Exception):
    pass
try:
    raise MyError("boom")
except MyError as e:
    print("got", str(e))
"#);
        assert_eq!(it.stdout.len(), 1);
        assert!(it.stdout[0].starts_with("got"));
    }

    #[test]
    fn finally_always_runs() {
        let it = run(r#"
def f():
    try:
        raise ValueError("x")
    except ValueError:
        return 1
    finally:
        print("cleanup")
print(f())
"#);
        assert_eq!(it.stdout, vec!["cleanup", "1"]);
    }

    #[test]
    fn imports_bind_top_level_package() {
        let mut r = Registry::new();
        r.set_module("pkg", "x = 1\n");
        r.set_module("pkg.sub", "y = 2\n");
        let mut it = Interpreter::new(r);
        it.exec_main("import pkg.sub\nprint(pkg.sub.y)\nprint(pkg.x)\n")
            .unwrap();
        assert_eq!(it.stdout, vec!["2", "1"]);
    }

    #[test]
    fn import_alias_binds_leaf() {
        let mut r = Registry::new();
        r.set_module("pkg", "");
        r.set_module("pkg.sub", "y = 2\n");
        let mut it = Interpreter::new(r);
        it.exec_main("import pkg.sub as s\nprint(s.y)\n").unwrap();
        assert_eq!(it.stdout, vec!["2"]);
    }

    #[test]
    fn from_import_names_and_submodules() {
        let mut r = Registry::new();
        r.set_module("lib", "a = 1\n");
        r.set_module("lib.tools", "b = 2\n");
        let mut it = Interpreter::new(r);
        it.exec_main("from lib import a, tools\nprint(a, tools.b)\n")
            .unwrap();
        assert_eq!(it.stdout, vec!["1 2"]);
    }

    #[test]
    fn from_import_missing_name_is_import_error() {
        let mut r = Registry::new();
        r.set_module("lib", "a = 1\n");
        let mut it = Interpreter::new(r);
        let e = it.exec_main("from lib import nope\n").unwrap_err();
        assert!(matches!(e.kind, ExcKind::ImportError));
    }

    #[test]
    fn modules_are_cached() {
        let mut r = Registry::new();
        r.set_module("m", "print(\"side effect\")\n");
        let mut it = Interpreter::new(r);
        it.exec_main("import m\nimport m\n").unwrap();
        assert_eq!(it.stdout, vec!["side effect"], "module body runs once");
    }

    #[test]
    fn cyclic_imports_do_not_hang() {
        let mut r = Registry::new();
        r.set_module("a", "import b\nx = 1\n");
        r.set_module("b", "import a\ny = 2\n");
        let mut it = Interpreter::new(r);
        it.exec_main("import a\nprint(a.x, a.b.y)\n").unwrap();
        assert_eq!(it.stdout, vec!["1 2"]);
    }

    #[test]
    fn import_events_record_marginal_costs() {
        let mut r = Registry::new();
        r.set_module("heavy", "__lt_work__(100)\n__lt_alloc__(50)\nz = 1\n");
        r.set_module("light", "import heavy\nw = 2\n");
        let mut it = Interpreter::new(r);
        it.exec_main("import light\n").unwrap();
        let heavy = it
            .import_events
            .iter()
            .find(|e| e.module == "heavy")
            .unwrap();
        let light = it
            .import_events
            .iter()
            .find(|e| e.module == "light")
            .unwrap();
        assert_eq!(heavy.depth, 1);
        assert_eq!(light.depth, 0);
        assert!(heavy.time_ns >= 100_000_000);
        assert!(heavy.mem_bytes >= 50 * 1024 * 1024);
        assert!(
            light.time_ns >= heavy.time_ns,
            "parent marginal cost includes nested imports"
        );
    }

    #[test]
    fn failed_import_is_removed_from_sys_modules() {
        let mut r = Registry::new();
        r.set_module("bad", "raise ValueError(\"no\")\n");
        let mut it = Interpreter::new(r);
        assert!(it.exec_main("import bad\n").is_err());
        assert!(it.module("bad").is_none());
    }

    #[test]
    fn handler_invocation() {
        let mut it = Interpreter::new(Registry::new());
        it.exec_main("def handler(event, context):\n    return event[\"n\"] * 2\n")
            .unwrap();
        let event = Value::dict(vec![(Value::str("n"), Value::Int(21))]);
        let out = it.call_handler("handler", event, Value::None).unwrap();
        assert!(py_eq(&out, &Value::Int(42)));
    }

    #[test]
    fn missing_handler_is_name_error() {
        let mut it = Interpreter::new(Registry::new());
        it.exec_main("x = 1\n").unwrap();
        let e = it
            .call_handler("handler", Value::None, Value::None)
            .unwrap_err();
        assert!(matches!(e.kind, ExcKind::NameError));
    }

    #[test]
    fn step_limit_turns_infinite_loop_into_error() {
        let mut it = Interpreter::new(Registry::new());
        it.step_limit = 10_000;
        let e = it.exec_main("while True:\n    pass\n").unwrap_err();
        assert!(matches!(e.kind, ExcKind::ResourceExhausted));
    }

    #[test]
    fn step_limit_is_not_catchable() {
        let mut it = Interpreter::new(Registry::new());
        it.step_limit = 10_000;
        let e = it
            .exec_main("try:\n    while True:\n        pass\nexcept:\n    print(\"no\")\n")
            .unwrap_err();
        assert!(matches!(e.kind, ExcKind::ResourceExhausted));
        assert!(it.stdout.is_empty());
    }

    #[test]
    fn global_statement_writes_module_scope() {
        let it = run(r#"
counter = 0
def bump():
    global counter
    counter += 1
bump()
bump()
print(counter)
"#);
        assert_eq!(it.stdout, vec!["2"]);
    }

    #[test]
    fn getattr_setattr_hasattr() {
        let it = run(r#"
class Box:
    pass
b = Box()
setattr(b, "x", 5)
print(hasattr(b, "x"), getattr(b, "x"), getattr(b, "y", -1))
"#);
        assert_eq!(it.stdout, vec!["True 5 -1"]);
    }

    #[test]
    fn del_removes_module_attribute() {
        let mut r = Registry::new();
        r.set_module("m", "a = 1\nb = 2\n");
        let mut it = Interpreter::new(r);
        it.exec_main("import m\ndel m.a\nprint(hasattr(m, \"a\"), m.b)\n")
            .unwrap();
        assert_eq!(it.stdout, vec!["False 2"]);
    }

    #[test]
    fn isinstance_checks() {
        let it = run(r#"
print(isinstance(1, int), isinstance("s", str), isinstance([1], list))
print(isinstance(1.5, int))
class A:
    pass
class B(A):
    pass
print(isinstance(B(), A))
"#);
        assert_eq!(it.stdout, vec!["True True True", "False", "True"]);
    }

    #[test]
    fn sim_intrinsics_advance_meter() {
        let mut it = Interpreter::new(Registry::new());
        it.exec_main("__lt_work__(250)\nblob = __lt_alloc__(10)\n")
            .unwrap();
        assert!(it.meter.clock_ns() >= 250_000_000);
        assert!(it.meter.mem_bytes() >= 10 * 1024 * 1024);
    }

    #[test]
    fn extcall_is_logged() {
        let mut it = Interpreter::new(Registry::new());
        it.exec_main("__lt_extcall__(\"s3\", \"put_object\", \"bucket\")\n")
            .unwrap();
        assert_eq!(it.extcalls, vec!["s3:put_object:bucket"]);
    }

    #[test]
    fn tuple_unpacking_assignment() {
        let it =
            run("a, b = (1, 2)\nprint(a, b)\nfor k, v in [(1, 2), (3, 4)]:\n    print(k + v)\n");
        assert_eq!(it.stdout, vec!["1 2", "3", "7"]);
    }

    #[test]
    fn negative_indexing() {
        let it = run("xs = [1, 2, 3]\nprint(xs[-1], \"abc\"[-2])\n");
        assert_eq!(it.stdout, vec!["3 b"]);
    }

    #[test]
    fn zero_division_raises() {
        let e = run_err("x = 1 / 0\n");
        assert!(matches!(e.kind, ExcKind::ZeroDivisionError));
    }

    #[test]
    fn comparison_chains() {
        let it = run("print(1 < 2 < 3, 1 < 2 > 5)\nprint(2 in [1, 2], 5 not in [1, 2])\n");
        assert_eq!(it.stdout, vec!["True False", "True True"]);
    }

    #[test]
    fn conditional_expression_short_circuits() {
        let it = run("x = 1 if True else unbound_name\nprint(x)\nprint(True or unbound)\n");
        assert_eq!(it.stdout, vec!["1", "True"]);
    }

    #[test]
    fn memory_charged_for_bindings() {
        let mut it = Interpreter::new(Registry::new());
        it.exec_main("a = 1\n").unwrap();
        let one = it.meter.mem_bytes();
        let mut it2 = Interpreter::new(Registry::new());
        it2.exec_main("a = 1\nb = 2\nc = 3\n").unwrap();
        assert!(it2.meter.mem_bytes() > one);
    }

    #[test]
    fn assert_raises_assertion_error() {
        let e = run_err("assert 1 == 2, \"mismatch\"\n");
        assert!(matches!(e.kind, ExcKind::AssertionError));
        assert_eq!(e.message, "mismatch");
    }

    #[test]
    fn list_comprehensions() {
        let it = run("xs = [i * 2 for i in range(5)]\nprint(xs)\nys = [i for i in range(10) if i % 3 == 0]\nprint(ys)\npairs = [a + b for a, b in [(1, 2), (3, 4)]]\nprint(pairs)\n");
        assert_eq!(it.stdout, vec!["[0, 2, 4, 6, 8]", "[0, 3, 6, 9]", "[3, 7]"]);
    }

    #[test]
    fn comprehension_respects_step_limit() {
        let mut it = Interpreter::new(Registry::new());
        it.step_limit = 1_000;
        let e = it
            .exec_main("xs = [i for i in range(100000)]\n")
            .unwrap_err();
        assert!(matches!(e.kind, ExcKind::ResourceExhausted));
    }

    #[test]
    fn slices_on_lists_strings_tuples() {
        let it = run("xs = [0, 1, 2, 3, 4]\nprint(xs[1:3])\nprint(xs[:2])\nprint(xs[3:])\nprint(xs[:])\nprint(\"hello\"[1:4])\nprint((1, 2, 3)[:2])\nprint(xs[-2:])\n");
        assert_eq!(
            it.stdout,
            vec![
                "[1, 2]",
                "[0, 1]",
                "[3, 4]",
                "[0, 1, 2, 3, 4]",
                "ell",
                "(1, 2)",
                "[3, 4]"
            ]
        );
    }

    #[test]
    fn slice_bounds_are_clamped() {
        let it = run("xs = [1, 2]\nprint(xs[0:99])\nprint(xs[5:9])\nprint(\"ab\"[-99:99])\n");
        assert_eq!(it.stdout, vec!["[1, 2]", "[]", "ab"]);
    }

    #[test]
    fn slicing_non_sequence_is_type_error() {
        let e = run_err("x = 5\ny = x[1:2]\n");
        assert!(matches!(e.kind, ExcKind::TypeError));
    }

    #[test]
    fn enumerate_and_zip() {
        let it = run("for i, v in enumerate([\"a\", \"b\"]):\n    print(i, v)\nfor x, y in zip([1, 2], [3, 4]):\n    print(x + y)\n");
        assert_eq!(it.stdout, vec!["0 a", "1 b", "4", "6"]);
    }

    #[test]
    fn inline_cache_invalidated_by_rebind() {
        let it = run_with(
            &[("m", "x = 1\n")],
            "import m\nfor i in range(3):\n    print(m.x)\n    m.x = m.x + 1\n",
        );
        assert_eq!(it.stdout, vec!["1", "2", "3"]);
    }

    #[test]
    fn inline_cache_del_invalidates_site() {
        let it = run_with(
            &[("m", "x = 1\n")],
            "import m\nout = []\nfor i in range(2):\n    try:\n        out.append(m.x)\n    except AttributeError:\n        out.append(0 - 1)\n    if i == 0:\n        del m.x\nprint(out)\n",
        );
        assert_eq!(it.stdout, vec!["[1, -1]"]);
    }

    // -- init-snapshot record/replay --------------------------------------

    fn replay_registry() -> Registry {
        let mut r = Registry::new();
        r.set_module(
            "util",
            "def helper(x):\n    return x + 1\nCONST = [1, 2, 3]\n",
        );
        r.set_module(
            "lib",
            "import util\nshared = util.CONST\nprint(\"lib init\")\n__lt_extcall__(\"init\", \"lib\")\ndef go(x):\n    return util.helper(x)\n",
        );
        r
    }

    fn run_snap(r: &Registry, src: &str, enable: bool) -> Interpreter {
        let mut it = Interpreter::new(r.clone());
        if enable {
            it.enable_init_snapshots();
        }
        it.exec_main(src).expect("program runs");
        it
    }

    fn assert_same_observables(a: &Interpreter, b: &Interpreter) {
        assert_eq!(a.stdout, b.stdout);
        assert_eq!(a.extcalls, b.extcalls);
        assert_eq!(a.import_events, b.import_events);
        assert_eq!(a.meter.clock_ns(), b.meter.clock_ns());
        assert_eq!(a.meter.mem_bytes(), b.meter.mem_bytes());
        assert_eq!(a.meter.steps, b.meter.steps);
        assert_eq!(a.observed_accesses(), b.observed_accesses());
        assert_eq!(a.loaded_modules(), b.loaded_modules());
    }

    #[test]
    fn snapshot_replay_is_byte_identical() {
        let r = replay_registry();
        let src = "import lib\nprint(lib.go(41))\n";
        let live = run_snap(&r, src, false);
        let first = run_snap(&r, src, true);
        let store = r.snapshot_store();
        assert!(store.stats().captures >= 2, "lib and util captured");
        assert_eq!(store.stats().hits, 0);
        let second = run_snap(&r, src, true);
        assert!(store.stats().hits >= 1, "second run replays");
        assert_same_observables(&first, &live);
        assert_same_observables(&second, &live);
    }

    #[test]
    fn pre_frame_import_blocks_capture_but_dep_still_replays() {
        let r = replay_registry();
        let src = "import util\nimport lib\nprint(lib.go(1))\n";
        let live = run_snap(&r, src, false);
        let _first = run_snap(&r, src, true);
        // `lib` cache-hits the pre-frame `util`, so only `util` is captured.
        assert!(r.snapshot_store().candidates("lib").is_empty());
        assert!(!r.snapshot_store().candidates("util").is_empty());
        let second = run_snap(&r, src, true);
        assert!(r.snapshot_store().stats().hits >= 1, "util replays");
        assert_same_observables(&second, &live);
    }

    #[test]
    fn foreign_write_blocks_capture() {
        let mut r = Registry::new();
        r.set_module("base", "x = 1\n");
        r.set_module("patch", "import base\nbase.x = 2\n");
        let src = "import base\nimport patch\nprint(base.x)\n";
        let live = run_snap(&r, src, false);
        let _first = run_snap(&r, src, true);
        assert!(r.snapshot_store().candidates("patch").is_empty());
        let second = run_snap(&r, src, true);
        assert_same_observables(&second, &live);
        assert_eq!(second.stdout, vec!["2"]);
    }

    #[test]
    fn replayed_functions_mutate_rehydrated_globals() {
        let mut r = Registry::new();
        r.set_module(
            "counter",
            "n = 0\ndef bump():\n    global n\n    n = n + 1\n    return n\n",
        );
        let src = "import counter\nprint(counter.bump())\nprint(counter.bump())\n";
        let live = run_snap(&r, src, false);
        let _first = run_snap(&r, src, true);
        let second = run_snap(&r, src, true);
        assert!(r.snapshot_store().stats().hits >= 1);
        assert_eq!(second.stdout, vec!["1", "2"]);
        assert_same_observables(&second, &live);
    }

    #[test]
    fn replay_preserves_cross_module_aliasing() {
        let r = replay_registry();
        let src = "import lib\nimport util\nlib.shared.append(9)\nprint(util.CONST)\n";
        let live = run_snap(&r, src, false);
        let _first = run_snap(&r, src, true);
        let second = run_snap(&r, src, true);
        assert!(r.snapshot_store().stats().hits >= 1);
        assert_eq!(second.stdout, vec!["lib init", "[1, 2, 3, 9]"]);
        assert_same_observables(&second, &live);
    }

    #[test]
    fn replayed_submodule_binds_into_parent() {
        let mut r = Registry::new();
        r.set_module("pkg", "tag = \"p\"\n");
        r.set_module("pkg.sub", "val = 7\n");
        let src = "import pkg.sub\nprint(pkg.sub.val)\n";
        let live = run_snap(&r, src, false);
        let _first = run_snap(&r, src, true);
        let second = run_snap(&r, src, true);
        assert!(r.snapshot_store().stats().hits >= 1);
        assert_same_observables(&second, &live);
    }

    #[test]
    fn unwalkable_namespace_is_negative_cached() {
        let mut r = Registry::new();
        r.set_module(
            "meth",
            "class C:\n    def m(self):\n        return 1\nc = C()\nf = c.m\n",
        );
        let src = "import meth\nprint(meth.f())\n";
        let live = run_snap(&r, src, false);
        let _first = run_snap(&r, src, true);
        assert!(r.snapshot_store().stats().ineligible >= 1);
        assert!(r.snapshot_store().candidates("meth").is_empty());
        let second = run_snap(&r, src, true);
        assert_eq!(r.snapshot_store().stats().hits, 0, "always live");
        assert_same_observables(&second, &live);
    }

    #[test]
    fn changed_dep_fingerprint_forces_live_run() {
        let r = replay_registry();
        let src = "import lib\nprint(lib.go(1))\n";
        let _first = run_snap(&r, src, true);
        let mut r2 = r.clone();
        r2.set_module("util", "def helper(x):\n    return x + 100\nCONST = []\n");
        let it = run_snap(&r2, src, true);
        assert_eq!(it.stdout, vec!["lib init", "101"]);
    }

    #[test]
    fn denied_module_stays_live_but_subtree_replays() {
        let r = replay_registry();
        r.snapshot_store().deny("lib");
        let src = "import lib\nprint(lib.go(1))\n";
        let live = run_snap(&r, src, false);
        let _first = run_snap(&r, src, true);
        assert!(r.snapshot_store().candidates("lib").is_empty());
        let second = run_snap(&r, src, true);
        assert!(
            r.snapshot_store().stats().hits >= 1,
            "util replays inside lib's live run"
        );
        assert_same_observables(&second, &live);
    }

    #[test]
    fn engines_share_snapshot_identity() {
        // A VM-run capture must replay byte-identically under the tree
        // engine and vice versa (tick-merged cost parity).
        let r = replay_registry();
        let src = "import lib\nprint(lib.go(41))\n";
        let mut vm = Interpreter::new(r.clone());
        vm.enable_init_snapshots();
        vm.exec_main(src).expect("vm run");
        let mut tree = Interpreter::new(r.clone());
        tree.engine = Engine::Tree;
        tree.enable_init_snapshots();
        tree.exec_main(src).expect("tree run");
        assert!(r.snapshot_store().stats().hits >= 1);
        assert_same_observables(&vm, &tree);
    }

    #[test]
    fn ic_live_totals_agree_replay_on_vs_replay_off() {
        // Replayed inits skip `attr_lookup` entirely; only the live/init
        // split keeps `ic_totals` comparable across snapshot modes.
        let mut r = Registry::new();
        r.set_module("util", "X = 1\n");
        r.set_module("lib", "import util\na = util.X\nb = util.X\nc = util.X\n");
        let src = "import lib\n\ndef handler(event, context):\n    return lib.a + lib.b\n";
        let run = |snapshots: bool| {
            let mut it = Interpreter::new(r.clone());
            if snapshots {
                it.enable_init_snapshots();
            }
            it.enable_ic_stats();
            it.exec_main(src).expect("program runs");
            for _ in 0..2 {
                it.call_handler("handler", Value::None, Value::None)
                    .expect("handler runs");
            }
            (it.ic_totals(), it.ic_init_totals())
        };
        let (live_off, init_off) = run(false);
        let _capture = run(true);
        let (live_on, init_on) = run(true);
        assert!(
            r.snapshot_store().stats().hits >= 1,
            "third run replays lib's init"
        );
        assert!(live_off.0 + live_off.1 > 0, "handlers exercise IC sites");
        assert!(init_off.0 + init_off.1 > 0, "lib's init exercises IC sites");
        assert_eq!(
            live_on, live_off,
            "live totals are invariant under init replay"
        );
        assert_eq!(init_on, (0, 0), "replayed init never reaches the caches");
    }
}
