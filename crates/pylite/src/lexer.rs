//! Indentation-aware tokenizer for the pylite language.
//!
//! The lexer converts source text into a stream of [`Token`]s, synthesizing
//! `Indent`/`Dedent` tokens from leading whitespace the way CPython's
//! tokenizer does. Newlines inside brackets are suppressed, comments and
//! blank lines are skipped.

use std::fmt;

/// A lexical token together with the 1-based source line it started on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based line number of the first character of the token.
    pub line: u32,
}

/// The kinds of tokens produced by [`lex`].
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword-candidate name.
    Name(String),
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A string literal (quotes removed, escapes resolved).
    Str(String),
    /// A logical end of line.
    Newline,
    /// An increase in indentation depth.
    Indent,
    /// A decrease in indentation depth.
    Dedent,
    /// End of input (emitted exactly once, after trailing dedents).
    Eof,

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    DoubleStar,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `@`
    At,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Name(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Newline => write!(f, "NEWLINE"),
            Tok::Indent => write!(f, "INDENT"),
            Tok::Dedent => write!(f, "DEDENT"),
            Tok::Eof => write!(f, "EOF"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::Semi => write!(f, ";"),
            Tok::Dot => write!(f, "."),
            Tok::Arrow => write!(f, "->"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::DoubleStar => write!(f, "**"),
            Tok::Slash => write!(f, "/"),
            Tok::DoubleSlash => write!(f, "//"),
            Tok::Percent => write!(f, "%"),
            Tok::Eq => write!(f, "="),
            Tok::PlusEq => write!(f, "+="),
            Tok::MinusEq => write!(f, "-="),
            Tok::StarEq => write!(f, "*="),
            Tok::SlashEq => write!(f, "/="),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::LtEq => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::GtEq => write!(f, ">="),
            Tok::At => write!(f, "@"),
        }
    }
}

/// An error produced while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description of the problem.
    pub message: String,
    /// 1-based line the error occurred on.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    indent_stack: Vec<usize>,
    bracket_depth: usize,
    tokens: Vec<Token>,
    at_line_start: bool,
}

/// Tokenize `source` into a vector of tokens terminated by [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] on malformed numeric literals, unterminated
/// strings, inconsistent dedents, or characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        indent_stack: vec![0],
        bracket_depth: 0,
        tokens: Vec::new(),
        at_line_start: true,
    };
    lx.run()?;
    Ok(lx.tokens)
}

impl<'a> Lexer<'a> {
    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: Tok) {
        self.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn run(&mut self) -> Result<(), LexError> {
        while self.pos < self.src.len() {
            if self.at_line_start && self.bracket_depth == 0 {
                self.handle_indentation()?;
                if self.pos >= self.src.len() {
                    break;
                }
            }
            let c = match self.peek() {
                Some(c) => c,
                None => break,
            };
            match c {
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'\\' if self.peek2() == Some(b'\n') => {
                    // Explicit line continuation.
                    self.bump();
                    self.bump();
                }
                b'\n' => {
                    self.bump();
                    if self.bracket_depth == 0 {
                        let emit = matches!(
                            self.tokens.last().map(|t| &t.kind),
                            Some(k) if !matches!(k, Tok::Newline | Tok::Indent | Tok::Dedent)
                        );
                        if emit {
                            self.push(Tok::Newline);
                        }
                        self.at_line_start = true;
                    }
                }
                b'0'..=b'9' => self.number()?,
                b'"' | b'\'' => self.string(c)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.name(),
                _ => self.operator()?,
            }
        }
        // Final newline if the last real token needs one.
        if matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(k) if !matches!(k, Tok::Newline | Tok::Indent | Tok::Dedent)
        ) {
            self.push(Tok::Newline);
        }
        while self.indent_stack.len() > 1 {
            self.indent_stack.pop();
            self.push(Tok::Dedent);
        }
        self.push(Tok::Eof);
        Ok(())
    }

    fn handle_indentation(&mut self) -> Result<(), LexError> {
        loop {
            let mut width = 0usize;
            let start = self.pos;
            while let Some(c) = self.peek() {
                match c {
                    b' ' => {
                        width += 1;
                        self.bump();
                    }
                    b'\t' => {
                        width += 8 - (width % 8);
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank line or comment-only line: ignore for indentation.
                Some(b'\n') => {
                    self.bump();
                    continue;
                }
                Some(b'\r') => {
                    self.bump();
                    continue;
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                None => {
                    self.at_line_start = false;
                    return Ok(());
                }
                Some(_) => {
                    let _ = start;
                    let current = *self.indent_stack.last().expect("indent stack nonempty");
                    if width > current {
                        self.indent_stack.push(width);
                        self.push(Tok::Indent);
                    } else if width < current {
                        while *self.indent_stack.last().expect("nonempty") > width {
                            self.indent_stack.pop();
                            self.push(Tok::Dedent);
                        }
                        if *self.indent_stack.last().expect("nonempty") != width {
                            return Err(self.err("inconsistent dedent"));
                        }
                    }
                    self.at_line_start = false;
                    return Ok(());
                }
            }
        }
    }

    fn number(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        let line = self.line;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        // A '.' followed by a digit makes this a float; a bare '.' after the
        // digits (e.g. `1.` ) is also accepted as a float, but `1.method()` is
        // not valid pylite anyway so we only consume when followed by a digit.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E'))
            && matches!(self.peek2(), Some(b'0'..=b'9') | Some(b'+') | Some(b'-'))
        {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        let kind = if is_float {
            Tok::Float(
                text.parse::<f64>()
                    .map_err(|_| self.err(format!("bad float literal `{text}`")))?,
            )
        } else {
            Tok::Int(
                text.parse::<i64>()
                    .map_err(|_| self.err(format!("integer literal out of range `{text}`")))?,
            )
        };
        self.tokens.push(Token { kind, line });
        Ok(())
    }

    fn string(&mut self, quote: u8) -> Result<(), LexError> {
        let line = self.line;
        self.bump(); // opening quote
                     // Triple-quoted strings.
        let triple = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if triple {
            self.bump();
            self.bump();
        }
        let mut out = String::new();
        loop {
            let c = self.bump().ok_or_else(|| self.err("unterminated string"))?;
            if c == quote {
                if !triple {
                    break;
                }
                if self.peek() == Some(quote) && self.peek2() == Some(quote) {
                    self.bump();
                    self.bump();
                    break;
                }
                out.push(c as char);
                continue;
            }
            if c == b'\n' && !triple {
                return Err(self.err("unterminated string"));
            }
            if c == b'\\' {
                let esc = self.bump().ok_or_else(|| self.err("unterminated escape"))?;
                match esc {
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'\\' => out.push('\\'),
                    b'\'' => out.push('\''),
                    b'"' => out.push('"'),
                    b'0' => out.push('\0'),
                    b'\n' => {}
                    other => {
                        out.push('\\');
                        out.push(other as char);
                    }
                }
                continue;
            }
            // Pass through UTF-8 bytes untouched.
            out.push(c as char);
        }
        self.tokens.push(Token {
            kind: Tok::Str(out),
            line,
        });
        Ok(())
    }

    fn name(&mut self) {
        let start = self.pos;
        let line = self.line;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'0'..=b'9') | Some(b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii identifier")
            .to_owned();
        self.tokens.push(Token {
            kind: Tok::Name(text),
            line,
        });
    }

    fn operator(&mut self) -> Result<(), LexError> {
        let c = self.bump().expect("operator byte present");
        let two = self.peek();
        let kind = match (c, two) {
            (b'(', _) => {
                self.bracket_depth += 1;
                Tok::LParen
            }
            (b')', _) => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                Tok::RParen
            }
            (b'[', _) => {
                self.bracket_depth += 1;
                Tok::LBracket
            }
            (b']', _) => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                Tok::RBracket
            }
            (b'{', _) => {
                self.bracket_depth += 1;
                Tok::LBrace
            }
            (b'}', _) => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                Tok::RBrace
            }
            (b',', _) => Tok::Comma,
            (b':', _) => Tok::Colon,
            (b';', _) => Tok::Semi,
            (b'.', _) => Tok::Dot,
            (b'@', _) => Tok::At,
            (b'-', Some(b'>')) => {
                self.bump();
                Tok::Arrow
            }
            (b'-', Some(b'=')) => {
                self.bump();
                Tok::MinusEq
            }
            (b'-', _) => Tok::Minus,
            (b'+', Some(b'=')) => {
                self.bump();
                Tok::PlusEq
            }
            (b'+', _) => Tok::Plus,
            (b'*', Some(b'*')) => {
                self.bump();
                Tok::DoubleStar
            }
            (b'*', Some(b'=')) => {
                self.bump();
                Tok::StarEq
            }
            (b'*', _) => Tok::Star,
            (b'/', Some(b'/')) => {
                self.bump();
                Tok::DoubleSlash
            }
            (b'/', Some(b'=')) => {
                self.bump();
                Tok::SlashEq
            }
            (b'/', _) => Tok::Slash,
            (b'%', _) => Tok::Percent,
            (b'=', Some(b'=')) => {
                self.bump();
                Tok::EqEq
            }
            (b'=', _) => Tok::Eq,
            (b'!', Some(b'=')) => {
                self.bump();
                Tok::NotEq
            }
            (b'<', Some(b'=')) => {
                self.bump();
                Tok::LtEq
            }
            (b'<', _) => Tok::Lt,
            (b'>', Some(b'=')) => {
                self.bump();
                Tok::GtEq
            }
            (b'>', _) => Tok::Gt,
            other => {
                return Err(self.err(format!("unexpected character `{}`", other.0 as char)));
            }
        };
        self.push(kind);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 1\n"),
            vec![
                Tok::Name("x".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn emits_indent_and_dedent() {
        let toks = kinds("if x:\n    y = 2\nz = 3\n");
        assert!(toks.contains(&Tok::Indent));
        assert!(toks.contains(&Tok::Dedent));
        let indent_pos = toks.iter().position(|t| *t == Tok::Indent).unwrap();
        let dedent_pos = toks.iter().position(|t| *t == Tok::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn trailing_dedents_are_emitted_at_eof() {
        let toks = kinds("def f():\n    if x:\n        return 1\n");
        let dedents = toks.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
        assert_eq!(toks.last(), Some(&Tok::Eof));
    }

    #[test]
    fn newlines_suppressed_inside_brackets() {
        let toks = kinds("f(1,\n  2,\n  3)\n");
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let toks = kinds("# a comment\n\nx = 1  # trailing\n\n");
        assert_eq!(
            toks,
            vec![
                Tok::Name("x".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escapes_are_resolved() {
        let toks = kinds(r#"s = "a\nb\t\"c\"""#);
        assert!(toks.contains(&Tok::Str("a\nb\t\"c\"".into())));
    }

    #[test]
    fn triple_quoted_strings_span_lines() {
        let toks = kinds("s = \"\"\"line1\nline2\"\"\"\n");
        assert!(toks.contains(&Tok::Str("line1\nline2".into())));
    }

    #[test]
    fn float_and_int_literals() {
        let toks = kinds("a = 1.5\nb = 10\nc = 2e3\n");
        assert!(toks.contains(&Tok::Float(1.5)));
        assert!(toks.contains(&Tok::Int(10)));
        assert!(toks.contains(&Tok::Float(2000.0)));
    }

    #[test]
    fn two_char_operators() {
        let toks = kinds("a == b != c <= d >= e // f ** g += 1\n");
        for t in [
            Tok::EqEq,
            Tok::NotEq,
            Tok::LtEq,
            Tok::GtEq,
            Tok::DoubleSlash,
            Tok::DoubleStar,
            Tok::PlusEq,
        ] {
            assert!(toks.contains(&t), "missing {t:?}");
        }
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("s = \"abc\n").is_err());
    }

    #[test]
    fn inconsistent_dedent_is_an_error() {
        assert!(lex("if a:\n        x = 1\n    y = 2\n").is_err());
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("x = 1\ny = 2\n").unwrap();
        let y = toks
            .iter()
            .find(|t| t.kind == Tok::Name("y".into()))
            .unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn line_continuation_joins_lines() {
        let toks = kinds("x = 1 + \\\n    2\n");
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn empty_source_yields_eof_only() {
        assert_eq!(kinds(""), vec![Tok::Eof]);
    }
}
