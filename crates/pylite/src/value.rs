//! Runtime values and namespaces for the pylite interpreter.

use crate::intern::{Symbol, SymbolHashBuilder};
use crate::resolved::RFuncDef;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Deferred namespace contents: a replayed module's bindings are produced
/// on access instead of eagerly (see [`crate::snapshot`]). Lookups
/// materialize single bindings; iteration-style access materializes
/// everything. Methods must not touch the namespace being filled, and
/// repeated calls must agree (same keys, aliasing-consistent values).
pub(crate) trait LazyBindings: std::fmt::Debug {
    /// The full binding list, in insertion order. Keys must be unique.
    fn fill(&self) -> Vec<(Symbol, Value)>;
    /// The pending value bound to `key`, if any.
    fn get(&self, key: Symbol) -> Option<Value>;
    /// Whether `key` is among the pending bindings.
    fn contains(&self, key: Symbol) -> bool;
}

/// An insertion-ordered symbol-keyed map used for every namespace (module
/// globals, class dicts, instance dicts, call frames).
///
/// Iteration order is insertion order, which makes attribute enumeration —
/// and therefore Delta Debugging partitioning — fully deterministic.
///
/// Every mutation bumps a monotonically increasing *generation* counter;
/// the interpreter's inline caches key on it to detect rebinds (trims and
/// fallback rewrites mutate module namespaces and must invalidate).
#[derive(Debug, Clone, Default)]
pub struct NsMap {
    order: Vec<Symbol>,
    map: HashMap<Symbol, Value, SymbolHashBuilder>,
    generation: u64,
    /// Pending deferred contents. Every access through [`Namespace`]
    /// materializes this first, so the map below is never observed stale.
    lazy: Option<Rc<dyn LazyBindings>>,
}

impl NsMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty map with room for `n` bindings (bulk builders: snapshot
    /// replay knows the final size up front).
    pub fn with_capacity(n: usize) -> Self {
        NsMap {
            order: Vec::with_capacity(n),
            map: HashMap::with_capacity_and_hasher(n, SymbolHashBuilder::default()),
            generation: 0,
            lazy: None,
        }
    }

    /// Materialize all pending deferred contents, if any. No-op otherwise.
    ///
    /// Bindings already materialized (or overwritten) individually keep
    /// their value; their key still lands in its pending insertion slot,
    /// ahead of any keys bound after replay — matching the order a live
    /// init would have produced.
    fn force(&mut self) {
        if let Some(fill) = self.lazy.take() {
            let pairs = fill.fill();
            self.generation += 1;
            self.map.reserve(pairs.len());
            let mut order = Vec::with_capacity(pairs.len() + self.order.len());
            for (key, value) in pairs {
                order.push(key);
                self.map.entry(key).or_insert(value);
            }
            order.append(&mut self.order);
            self.order = order;
        }
    }

    /// Materialize the single pending binding for `key`, if any, returning
    /// its value. The key joins `map` but not `order`: full ordering is
    /// reconstructed by [`NsMap::force`] when iteration-style access needs
    /// it. The generation is untouched — the binding was conceptually
    /// present all along, so caches holding the current generation stay
    /// valid.
    fn materialize(&mut self, key: Symbol) -> Option<Value> {
        let value = self.lazy.as_ref()?.get(key)?;
        self.map.insert(key, value.clone());
        Some(value)
    }

    /// Insert a binding known to be absent: one hash probe instead of
    /// `set`'s occupied-slot check. Callers must guarantee `key` is new —
    /// violating that leaves a stale duplicate in the insertion order.
    pub(crate) fn insert_new(&mut self, key: Symbol, value: Value) {
        debug_assert!(!self.map.contains_key(&key), "insert_new on bound key");
        self.generation += 1;
        self.order.push(key);
        self.map.insert(key, value);
    }

    /// Look up a binding.
    pub fn get(&self, key: Symbol) -> Option<&Value> {
        self.map.get(&key)
    }

    /// Insert or update a binding, returning the previous value if any.
    pub fn set(&mut self, key: Symbol, value: Value) -> Option<Value> {
        self.generation += 1;
        if let Some(slot) = self.map.get_mut(&key) {
            return Some(std::mem::replace(slot, value));
        }
        self.order.push(key);
        self.map.insert(key, value);
        None
    }

    /// Remove a binding, returning it if present.
    pub fn remove(&mut self, key: Symbol) -> Option<Value> {
        let v = self.map.remove(&key)?;
        self.generation += 1;
        self.order.retain(|k| *k != key);
        Some(v)
    }

    /// Whether `key` is bound.
    pub fn contains(&self, key: Symbol) -> bool {
        self.map.contains_key(&key)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.order.iter().copied()
    }

    /// `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.order
            .iter()
            .map(move |k| (*k, self.map.get(k).expect("order and map are consistent")))
    }

    /// The mutation counter (bumped on every `set`/`remove`).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A shared, mutable namespace.
///
/// The backing map is private: all mutation goes through [`Namespace::set`]
/// and [`Namespace::remove`], so the generation counter the interpreter's
/// inline caches rely on cannot be bypassed. A namespace may carry
/// *deferred* contents (snapshot replay); every accessor materializes them
/// first, so deferral is unobservable apart from when the work happens.
#[derive(Debug, Clone, Default)]
pub struct Namespace(Rc<RefCell<NsMap>>);

impl Namespace {
    /// A fresh empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh namespace with room for `n` bindings.
    pub fn with_capacity(n: usize) -> Self {
        Namespace(Rc::new(RefCell::new(NsMap::with_capacity(n))))
    }

    /// Defer this namespace's contents to `fill`, which will run on first
    /// access. The namespace must still be empty and not already deferred.
    pub(crate) fn defer_to(&self, fill: Rc<dyn LazyBindings>) {
        let mut m = self.0.borrow_mut();
        debug_assert!(
            m.map.is_empty() && m.lazy.is_none(),
            "defer_to on a used namespace"
        );
        m.lazy = Some(fill);
    }

    /// Immutable access with any deferred contents materialized.
    fn map(&self) -> std::cell::Ref<'_, NsMap> {
        {
            let m = self.0.borrow();
            if m.lazy.is_none() {
                return m;
            }
        }
        self.0.borrow_mut().force();
        self.0.borrow()
    }

    /// Mutable access with any deferred contents materialized.
    fn map_mut(&self) -> std::cell::RefMut<'_, NsMap> {
        let mut m = self.0.borrow_mut();
        m.force();
        m
    }

    /// Insert a binding known to be absent (see [`NsMap::insert_new`]).
    pub(crate) fn insert_new(&self, key: Symbol, value: Value) {
        self.map_mut().insert_new(key, value);
    }

    /// Look up a binding (cloning the value handle). Deferred namespaces
    /// materialize only the requested binding, not the whole map.
    pub fn get(&self, key: Symbol) -> Option<Value> {
        {
            let m = self.0.borrow();
            if let Some(v) = m.get(key) {
                return Some(v.clone());
            }
            m.lazy.as_ref()?;
        }
        self.0.borrow_mut().materialize(key)
    }

    /// Insert or update a binding.
    pub fn set(&self, key: Symbol, value: Value) -> Option<Value> {
        let mut m = self.0.borrow_mut();
        if let Some(lazy) = m.lazy.clone() {
            // A materialized key takes a plain overwrite below, keeping
            // its pending insertion slot.
            if let std::collections::hash_map::Entry::Vacant(slot) = m.map.entry(key) {
                if let Some(prev) = lazy.get(key) {
                    // Overwriting a still-pending binding: materialize it
                    // so the original value is returned and the key keeps
                    // its pending insertion slot.
                    slot.insert(prev);
                } else {
                    // A genuinely new key sorts after every pending
                    // binding, so the pending order must exist first.
                    m.force();
                }
            }
        }
        m.set(key, value)
    }

    /// Remove a binding.
    pub fn remove(&self, key: Symbol) -> Option<Value> {
        self.map_mut().remove(key)
    }

    /// Whether `key` is bound. Deferred namespaces answer without
    /// materializing anything.
    pub fn contains(&self, key: Symbol) -> bool {
        let m = self.0.borrow();
        m.contains(key) || m.lazy.as_ref().is_some_and(|l| l.contains(key))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the namespace has no bindings.
    pub fn is_empty(&self) -> bool {
        self.map().is_empty()
    }

    /// Keys in insertion order (snapshot).
    pub fn key_syms(&self) -> Vec<Symbol> {
        self.map().keys().collect()
    }

    /// The namespace's mutation generation (see [`NsMap::generation`]).
    /// Reading it does not materialize deferred contents: single-binding
    /// materialization leaves the generation untouched (the binding was
    /// conceptually present all along), and a full force bumps it once —
    /// so a `(generation, value)` pair observed through [`Namespace::get`]
    /// stays coherent.
    pub fn generation(&self) -> u64 {
        self.0.borrow().generation()
    }

    /// Whether `self` and `other` are the *same* namespace object.
    pub fn same(&self, other: &Namespace) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

/// A user-defined function.
#[derive(Debug)]
pub struct PyFunc {
    /// The shared resolved definition (name, parameters, body).
    pub code: Arc<RFuncDef>,
    /// Default values, evaluated at definition time (parallel to params).
    pub defaults: Vec<Option<Value>>,
    /// The module globals the function closes over.
    pub globals: Namespace,
    /// Dotted name of the defining module (for diagnostics).
    pub module: Rc<str>,
}

impl PyFunc {
    /// The function's name.
    pub fn name(&self) -> &str {
        &self.code.name
    }
}

/// A user-defined class.
#[derive(Debug)]
pub struct PyClass {
    /// Class name.
    pub name: String,
    /// Base classes in MRO order (single inheritance chains in practice).
    pub bases: Vec<Rc<PyClass>>,
    /// Class attribute namespace.
    pub ns: Namespace,
    /// Whether the class derives (transitively) from `Exception`.
    pub is_exception: bool,
}

impl PyClass {
    /// Look up an attribute on the class or its base chain.
    pub fn lookup(&self, name: Symbol) -> Option<Value> {
        if let Some(v) = self.ns.get(name) {
            return Some(v);
        }
        for base in &self.bases {
            if let Some(v) = base.lookup(name) {
                return Some(v);
            }
        }
        None
    }

    /// Whether this class is, or derives from, a class named `name`.
    pub fn isa(&self, name: &str) -> bool {
        if self.name == name {
            return true;
        }
        self.bases.iter().any(|b| b.isa(name))
    }
}

/// An instance of a user-defined class.
#[derive(Debug)]
pub struct PyInstance {
    /// The instance's class.
    pub class: Rc<PyClass>,
    /// Instance attribute namespace.
    pub ns: Namespace,
}

/// A module object: a namespace populated by executing the module body.
#[derive(Debug)]
pub struct ModuleObj {
    /// Dotted module name.
    pub name: String,
    /// The module name as a symbol (keys observed-access recording).
    pub name_sym: Symbol,
    /// Whether the module came from the registry — only registry modules
    /// participate in observed-access tracking.
    pub tracked: bool,
    /// The module namespace.
    pub ns: Namespace,
}

/// Builtin free functions, dispatched by the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `print(*args)` — appends a line to the interpreter's stdout buffer.
    Print,
    /// `len(x)`.
    Len,
    /// `range(stop)` / `range(start, stop[, step])`.
    Range,
    /// `str(x)`.
    Str,
    /// `int(x)`.
    Int,
    /// `float(x)`.
    Float,
    /// `bool(x)`.
    Bool,
    /// `abs(x)`.
    Abs,
    /// `min(iterable)` / `min(a, b, ...)`.
    Min,
    /// `max(iterable)` / `max(a, b, ...)`.
    Max,
    /// `sum(iterable)`.
    Sum,
    /// `round(x[, ndigits])`.
    Round,
    /// `sorted(iterable)`.
    Sorted,
    /// `enumerate(iterable)` — returns a list of `(i, item)` tuples.
    Enumerate,
    /// `zip(a, b)` — returns a list of pairs.
    Zip,
    /// `isinstance(x, cls)`.
    Isinstance,
    /// `type(x)` — returns the type name as a string.
    Type,
    /// `getattr(obj, name[, default])`.
    Getattr,
    /// `setattr(obj, name, value)`.
    Setattr,
    /// `hasattr(obj, name)`.
    Hasattr,
    /// `repr(x)`.
    Repr,
    /// `list(iterable)`.
    List,
    /// `dict()` / `dict(pairs)`.
    Dict,
    /// `tuple(iterable)`.
    Tuple,
    /// `__lt_work__(ms)` — advance the virtual clock (models native work).
    SimWork,
    /// `__lt_alloc__(mb)` — charge simulated memory, returns an opaque blob.
    SimAlloc,
    /// `__lt_extcall__(service, op, payload...)` — log an external call.
    SimExtCall,
}

impl Builtin {
    /// The name the builtin is bound to.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Print => "print",
            Builtin::Len => "len",
            Builtin::Range => "range",
            Builtin::Str => "str",
            Builtin::Int => "int",
            Builtin::Float => "float",
            Builtin::Bool => "bool",
            Builtin::Abs => "abs",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Sum => "sum",
            Builtin::Round => "round",
            Builtin::Sorted => "sorted",
            Builtin::Enumerate => "enumerate",
            Builtin::Zip => "zip",
            Builtin::Isinstance => "isinstance",
            Builtin::Type => "type",
            Builtin::Getattr => "getattr",
            Builtin::Setattr => "setattr",
            Builtin::Hasattr => "hasattr",
            Builtin::Repr => "repr",
            Builtin::List => "list",
            Builtin::Dict => "dict",
            Builtin::Tuple => "tuple",
            Builtin::SimWork => "__lt_work__",
            Builtin::SimAlloc => "__lt_alloc__",
            Builtin::SimExtCall => "__lt_extcall__",
        }
    }

    /// All builtins, for installing into the builtin namespace.
    pub fn all() -> &'static [Builtin] {
        &[
            Builtin::Print,
            Builtin::Len,
            Builtin::Range,
            Builtin::Str,
            Builtin::Int,
            Builtin::Float,
            Builtin::Bool,
            Builtin::Abs,
            Builtin::Min,
            Builtin::Max,
            Builtin::Sum,
            Builtin::Round,
            Builtin::Sorted,
            Builtin::Enumerate,
            Builtin::Zip,
            Builtin::Isinstance,
            Builtin::Type,
            Builtin::Getattr,
            Builtin::Setattr,
            Builtin::Hasattr,
            Builtin::Repr,
            Builtin::List,
            Builtin::Dict,
            Builtin::Tuple,
            Builtin::SimWork,
            Builtin::SimAlloc,
            Builtin::SimExtCall,
        ]
    }
}

/// Methods on builtin container/string types, dispatched by the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeMethod {
    // list
    /// `list.append(x)`.
    Append,
    /// `list.extend(iterable)`.
    Extend,
    /// `list.pop([i])`.
    Pop,
    /// `list.index(x)`.
    Index,
    /// `list/str.count(x)`.
    Count,
    // dict
    /// `dict.get(key[, default])`.
    Get,
    /// `dict.keys()`.
    Keys,
    /// `dict.values()`.
    Values,
    /// `dict.items()`.
    Items,
    /// `dict.update(other)`.
    Update,
    // str
    /// `str.upper()`.
    Upper,
    /// `str.lower()`.
    Lower,
    /// `str.strip()`.
    Strip,
    /// `str.split([sep])`.
    Split,
    /// `str.join(iterable)`.
    Join,
    /// `str.replace(a, b)`.
    Replace,
    /// `str.startswith(prefix)`.
    Startswith,
    /// `str.endswith(suffix)`.
    Endswith,
    /// `str.format(args...)` — positional `{}` only.
    Format,
}

impl NativeMethod {
    /// Resolve a method name for a given receiver kind.
    pub fn resolve(recv: &Value, name: &str) -> Option<NativeMethod> {
        use NativeMethod::*;
        match recv {
            Value::List(_) => match name {
                "append" => Some(Append),
                "extend" => Some(Extend),
                "pop" => Some(Pop),
                "index" => Some(Index),
                "count" => Some(Count),
                _ => None,
            },
            Value::Dict(_) => match name {
                "get" => Some(Get),
                "keys" => Some(Keys),
                "values" => Some(Values),
                "items" => Some(Items),
                "update" => Some(Update),
                "pop" => Some(Pop),
                _ => None,
            },
            Value::Str(_) => match name {
                "upper" => Some(Upper),
                "lower" => Some(Lower),
                "strip" => Some(Strip),
                "split" => Some(Split),
                "join" => Some(Join),
                "replace" => Some(Replace),
                "startswith" => Some(Startswith),
                "endswith" => Some(Endswith),
                "format" => Some(Format),
                "count" => Some(Count),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Builtin exception kinds (mirrors the CPython hierarchy pylite needs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExcKind {
    /// Attribute lookup failure — the trigger for λ-trim's fallback (§5.4).
    AttributeError,
    /// Import machinery failure.
    ImportError,
    /// Unbound name.
    NameError,
    /// Operation on an inappropriate type.
    TypeError,
    /// Right type, wrong value.
    ValueError,
    /// Sequence index out of range.
    IndexError,
    /// Missing dict key.
    KeyError,
    /// Division or modulo by zero.
    ZeroDivisionError,
    /// Generic runtime error (also used for `raise Exception(..)`).
    RuntimeError,
    /// `assert` failure.
    AssertionError,
    /// Interpreter resource limit (step budget) exceeded.
    ResourceExhausted,
    /// A user-defined exception class.
    Custom(String),
}

impl ExcKind {
    /// The class name of the exception.
    pub fn class_name(&self) -> &str {
        match self {
            ExcKind::AttributeError => "AttributeError",
            ExcKind::ImportError => "ImportError",
            ExcKind::NameError => "NameError",
            ExcKind::TypeError => "TypeError",
            ExcKind::ValueError => "ValueError",
            ExcKind::IndexError => "IndexError",
            ExcKind::KeyError => "KeyError",
            ExcKind::ZeroDivisionError => "ZeroDivisionError",
            ExcKind::RuntimeError => "RuntimeError",
            ExcKind::AssertionError => "AssertionError",
            ExcKind::ResourceExhausted => "ResourceExhausted",
            ExcKind::Custom(name) => name,
        }
    }

    /// Builtin exception class names installed in the builtin namespace.
    pub fn builtin_names() -> &'static [&'static str] {
        &[
            "Exception",
            "AttributeError",
            "ImportError",
            "NameError",
            "TypeError",
            "ValueError",
            "IndexError",
            "KeyError",
            "ZeroDivisionError",
            "RuntimeError",
            "AssertionError",
        ]
    }

    /// Construct the kind for a builtin exception class name.
    pub fn from_class_name(name: &str) -> ExcKind {
        match name {
            "AttributeError" => ExcKind::AttributeError,
            "ImportError" => ExcKind::ImportError,
            "NameError" => ExcKind::NameError,
            "TypeError" => ExcKind::TypeError,
            "ValueError" => ExcKind::ValueError,
            "IndexError" => ExcKind::IndexError,
            "KeyError" => ExcKind::KeyError,
            "ZeroDivisionError" => ExcKind::ZeroDivisionError,
            "RuntimeError" | "Exception" => ExcKind::RuntimeError,
            "AssertionError" => ExcKind::AssertionError,
            other => ExcKind::Custom(other.to_owned()),
        }
    }

    /// Whether a handler `except <handler_class>` catches this kind.
    ///
    /// `Exception` catches everything; otherwise the class names must match.
    /// Custom kinds also record their base chain via [`PyErr::class_chain`].
    pub fn matches_handler(&self, handler_class: &str) -> bool {
        handler_class == "Exception" || self.class_name() == handler_class
    }
}

/// A raised pylite exception.
#[derive(Debug, Clone, PartialEq)]
pub struct PyErr {
    /// The exception kind.
    pub kind: ExcKind,
    /// The message (first constructor argument, stringified).
    pub message: String,
    /// For user-defined exception classes: the full class chain (self +
    /// bases) so `except Base:` matches subclasses.
    pub class_chain: Vec<String>,
}

impl PyErr {
    /// Construct an exception of `kind` with a message.
    pub fn new(kind: ExcKind, message: impl Into<String>) -> Self {
        PyErr {
            kind,
            message: message.into(),
            class_chain: Vec::new(),
        }
    }

    /// Shorthand for an [`ExcKind::AttributeError`].
    pub fn attribute_error(message: impl Into<String>) -> Self {
        Self::new(ExcKind::AttributeError, message)
    }

    /// Shorthand for an [`ExcKind::TypeError`].
    pub fn type_error(message: impl Into<String>) -> Self {
        Self::new(ExcKind::TypeError, message)
    }

    /// Whether `except <handler_class>` catches this exception.
    pub fn matches_handler(&self, handler_class: &str) -> bool {
        if self.kind.matches_handler(handler_class) {
            return true;
        }
        self.class_chain.iter().any(|c| c == handler_class)
    }
}

impl fmt::Display for PyErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.message.is_empty() {
            write!(f, "{}", self.kind.class_name())
        } else {
            write!(f, "{}: {}", self.kind.class_name(), self.message)
        }
    }
}

impl std::error::Error for PyErr {}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Immutable string (`Arc` so resolved-IR literals evaluate to a
    /// pointer clone of the shared allocation).
    Str(Arc<str>),
    /// Mutable list.
    List(Rc<RefCell<Vec<Value>>>),
    /// Immutable tuple.
    Tuple(Rc<Vec<Value>>),
    /// Mutable dict (association list; keys compared with [`py_eq`]).
    Dict(Rc<RefCell<Vec<(Value, Value)>>>),
    /// User-defined function.
    Func(Rc<PyFunc>),
    /// Bound method (`instance.method`).
    BoundMethod {
        /// The receiver.
        recv: Box<Value>,
        /// The underlying function.
        func: Rc<PyFunc>,
    },
    /// Builtin function.
    Builtin(Builtin),
    /// Builtin method bound to a receiver (`[].append`).
    NativeMethod {
        /// The receiver value.
        recv: Box<Value>,
        /// Which method.
        method: NativeMethod,
    },
    /// User-defined class.
    Class(Rc<PyClass>),
    /// Builtin exception class (e.g. `AttributeError` itself).
    ExcClass(ExcKind),
    /// An exception instance (result of `ValueError("msg")`).
    ExcValue(Rc<PyErr>),
    /// Instance of a user-defined class.
    Instance(Rc<RefCell<PyInstance>>),
    /// A module object.
    Module(Rc<ModuleObj>),
    /// An opaque simulated allocation of the given size in bytes, produced
    /// by `__lt_alloc__` (models model weights, native buffers, …).
    Blob(u64),
}

impl Value {
    /// Make a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Make a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Make a tuple value.
    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(Rc::new(items))
    }

    /// Make a dict value from pairs.
    pub fn dict(pairs: Vec<(Value, Value)>) -> Value {
        Value::Dict(Rc::new(RefCell::new(pairs)))
    }

    /// Python truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Tuple(t) => !t.is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            _ => true,
        }
    }

    /// The `type(x)` name.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Dict(_) => "dict",
            Value::Func(_) | Value::BoundMethod { .. } => "function",
            Value::Builtin(_) | Value::NativeMethod { .. } => "builtin_function_or_method",
            Value::Class(_) => "type",
            Value::ExcClass(_) => "type",
            Value::ExcValue(_) => "Exception",
            Value::Instance(_) => "object",
            Value::Module(_) => "module",
            Value::Blob(_) => "blob",
        }
    }

    /// The class name used by `isinstance` / `type()` display.
    pub fn class_name(&self) -> String {
        match self {
            Value::Instance(i) => i.borrow().class.name.clone(),
            Value::ExcValue(e) => e.kind.class_name().to_owned(),
            other => other.type_name().to_owned(),
        }
    }
}

/// Structural equality following Python `==` semantics for the data types.
/// Identity-like values (functions, classes, modules) compare by pointer.
pub fn py_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::None, Value::None) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x == y,
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        (Value::Bool(x), Value::Int(y)) | (Value::Int(y), Value::Bool(x)) => (*x as i64) == *y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::List(x), Value::List(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| py_eq(a, b))
        }
        (Value::Tuple(x), Value::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| py_eq(a, b))
        }
        (Value::Dict(x), Value::Dict(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len()
                && x.iter()
                    .all(|(k, v)| y.iter().any(|(k2, v2)| py_eq(k, k2) && py_eq(v, v2)))
        }
        (Value::Func(x), Value::Func(y)) => Rc::ptr_eq(x, y),
        (Value::Class(x), Value::Class(y)) => Rc::ptr_eq(x, y),
        (Value::Module(x), Value::Module(y)) => Rc::ptr_eq(x, y),
        (Value::Instance(x), Value::Instance(y)) => Rc::ptr_eq(x, y),
        (Value::Builtin(x), Value::Builtin(y)) => x == y,
        (Value::ExcClass(x), Value::ExcClass(y)) => x == y,
        (Value::Blob(x), Value::Blob(y)) => x == y,
        _ => false,
    }
}

/// `str(x)` rendering.
pub fn py_str(v: &Value) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        other => py_repr(other),
    }
}

/// `repr(x)` rendering.
pub fn py_repr(v: &Value) -> String {
    match v {
        Value::None => "None".into(),
        Value::Bool(true) => "True".into(),
        Value::Bool(false) => "False".into(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            let s = f.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Str(s) => format!("{:?}", &**s),
        Value::List(items) => {
            let inner: Vec<String> = items.borrow().iter().map(py_repr).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Tuple(items) => {
            let inner: Vec<String> = items.iter().map(py_repr).collect();
            if items.len() == 1 {
                format!("({},)", inner[0])
            } else {
                format!("({})", inner.join(", "))
            }
        }
        Value::Dict(pairs) => {
            let inner: Vec<String> = pairs
                .borrow()
                .iter()
                .map(|(k, v)| format!("{}: {}", py_repr(k), py_repr(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
        Value::Func(f) => format!("<function {}>", f.name()),
        Value::BoundMethod { func, .. } => format!("<bound method {}>", func.name()),
        Value::Builtin(b) => format!("<built-in function {}>", b.name()),
        Value::NativeMethod { method, .. } => format!("<built-in method {method:?}>"),
        Value::Class(c) => format!("<class '{}'>", c.name),
        Value::ExcClass(k) => format!("<class '{}'>", k.class_name()),
        Value::ExcValue(e) => {
            format!("{}({:?})", e.kind.class_name(), e.message)
        }
        Value::Instance(i) => format!("<{} object>", i.borrow().class.name),
        Value::Module(m) => format!("<module '{}'>", m.name),
        Value::Blob(bytes) => format!("<blob {bytes} bytes>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    fn syms(names: &[&str]) -> (Interner, Vec<Symbol>) {
        let i = Interner::new();
        let syms = names.iter().map(|n| i.intern(n)).collect();
        (i, syms)
    }

    #[test]
    fn nsmap_preserves_insertion_order() {
        let (_i, s) = syms(&["b", "a", "c"]);
        let mut m = NsMap::new();
        m.set(s[0], Value::Int(1));
        m.set(s[1], Value::Int(2));
        m.set(s[2], Value::Int(3));
        let keys: Vec<Symbol> = m.keys().collect();
        assert_eq!(keys, s);
    }

    #[test]
    fn nsmap_set_updates_in_place() {
        let (_i, s) = syms(&["a"]);
        let mut m = NsMap::new();
        m.set(s[0], Value::Int(1));
        let prev = m.set(s[0], Value::Int(2));
        assert!(matches!(prev, Some(Value::Int(1))));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn nsmap_remove_drops_from_order() {
        let (_i, s) = syms(&["a", "b"]);
        let mut m = NsMap::new();
        m.set(s[0], Value::Int(1));
        m.set(s[1], Value::Int(2));
        m.remove(s[0]);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![s[1]]);
        assert!(!m.contains(s[0]));
    }

    #[test]
    fn namespace_generation_bumps_on_mutation() {
        let (_i, s) = syms(&["a", "b"]);
        let ns = Namespace::new();
        let g0 = ns.generation();
        ns.set(s[0], Value::Int(1));
        let g1 = ns.generation();
        assert!(g1 > g0);
        ns.set(s[0], Value::Int(2)); // in-place update must also bump
        let g2 = ns.generation();
        assert!(g2 > g1);
        ns.remove(s[0]);
        assert!(ns.generation() > g2);
        assert!(ns.get(s[1]).is_none());
    }

    #[test]
    fn namespace_same_is_identity() {
        let a = Namespace::new();
        let b = a.clone();
        let c = Namespace::new();
        assert!(a.same(&b));
        assert!(!a.same(&c));
    }

    #[test]
    fn truthiness_matches_python() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::list(vec![]).truthy());
        assert!(Value::list(vec![Value::None]).truthy());
    }

    #[test]
    fn py_eq_mixes_int_and_float() {
        assert!(py_eq(&Value::Int(2), &Value::Float(2.0)));
        assert!(!py_eq(&Value::Int(2), &Value::Float(2.5)));
        assert!(py_eq(&Value::Bool(true), &Value::Int(1)));
    }

    #[test]
    fn py_eq_structural_containers() {
        let a = Value::list(vec![Value::Int(1), Value::str("x")]);
        let b = Value::list(vec![Value::Int(1), Value::str("x")]);
        assert!(py_eq(&a, &b));
        let d1 = Value::dict(vec![(Value::str("k"), Value::Int(1))]);
        let d2 = Value::dict(vec![(Value::str("k"), Value::Int(1))]);
        assert!(py_eq(&d1, &d2));
    }

    #[test]
    fn repr_formats() {
        assert_eq!(py_repr(&Value::Float(2.0)), "2.0");
        assert_eq!(py_repr(&Value::str("hi")), "\"hi\"");
        assert_eq!(py_repr(&Value::tuple(vec![Value::Int(1)])), "(1,)");
        assert_eq!(py_str(&Value::str("hi")), "hi");
    }

    #[test]
    fn exc_matching() {
        let e = PyErr::new(ExcKind::AttributeError, "gone");
        assert!(e.matches_handler("AttributeError"));
        assert!(e.matches_handler("Exception"));
        assert!(!e.matches_handler("ValueError"));
    }

    #[test]
    fn custom_exception_chain_matching() {
        let mut e = PyErr::new(ExcKind::Custom("MyError".into()), "x");
        e.class_chain = vec!["MyError".into(), "BaseError".into()];
        assert!(e.matches_handler("BaseError"));
        assert!(e.matches_handler("Exception"));
    }

    #[test]
    fn class_isa_walks_bases() {
        let base = Rc::new(PyClass {
            name: "Base".into(),
            bases: vec![],
            ns: Namespace::new(),
            is_exception: false,
        });
        let derived = PyClass {
            name: "Derived".into(),
            bases: vec![base],
            ns: Namespace::new(),
            is_exception: false,
        };
        assert!(derived.isa("Base"));
        assert!(derived.isa("Derived"));
        assert!(!derived.isa("Other"));
    }
}
