//! Hand-rolled property tests for the symbol interner (the external
//! `proptest` crate is unavailable offline; a seeded LCG generates the
//! name corpus deterministically).
//!
//! The properties guarded here are the soundness conditions of the
//! interned-symbol interpreter: interning must be a bijection per family
//! (`resolve ∘ intern = id`), symbols must stay meaningful across the
//! copy-on-write `Registry` clones and overlays the debloater creates, and
//! symbol *numbering* must never leak into content-based registry
//! fingerprints.

use pylite::intern::Interner;
use pylite::{Interpreter, Registry};
use std::sync::Arc;

/// Deterministic name generator (LCG over a small alphabet).
struct Names {
    state: u64,
}

impl Names {
    fn new(seed: u64) -> Self {
        Names { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    fn next_name(&mut self) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz_0123456789";
        let mut r = self.next_u64();
        let len = 1 + (r % 24) as usize;
        let mut out = String::with_capacity(len);
        // First char: letter or underscore (a valid identifier head).
        out.push(ALPHABET[(r % 27) as usize] as char);
        for _ in 1..len {
            r = self.next_u64();
            out.push(ALPHABET[(r % ALPHABET.len() as u64) as usize] as char);
        }
        out
    }
}

#[test]
fn intern_resolve_round_trips_and_is_idempotent() {
    let interner = Interner::default();
    let mut names = Names::new(0xC0FFEE);
    let mut seen = Vec::new();
    for _ in 0..2_000 {
        let name = names.next_name();
        let sym = interner.intern(&name);
        assert_eq!(&*interner.resolve(sym), name.as_str(), "resolve ∘ intern");
        assert_eq!(interner.intern(&name), sym, "interning is idempotent");
        assert_eq!(interner.lookup(&name), Some(sym), "lookup finds it");
        seen.push((name, sym));
    }
    // Earlier symbols survive later interning untouched.
    for (name, sym) in &seen {
        assert_eq!(&*interner.resolve(*sym), name.as_str());
    }
}

#[test]
fn lookup_never_grows_the_interner() {
    let interner = Interner::default();
    let mut names = Names::new(7);
    for _ in 0..500 {
        let name = names.next_name();
        let before = interner.len();
        let _ = interner.lookup(&name);
        assert_eq!(interner.len(), before, "lookup must not intern");
    }
}

#[test]
fn symbols_stable_across_registry_clone_and_overlay() {
    let mut r = Registry::new();
    r.set_module("m", "alpha = 1\ndef go():\n    return alpha\n");
    let mut names = Names::new(42);
    let pre: Vec<(String, pylite::Symbol)> = (0..200)
        .map(|_| {
            let n = names.next_name();
            let s = r.interner().intern(&n);
            (n, s)
        })
        .collect();

    let clone = r.clone();
    let overlay = r.with_module("m", "alpha = 2\n");

    // COW clones and overlays share one symbol family: same interner,
    // so every pre-existing symbol resolves to the same text everywhere.
    assert!(Arc::ptr_eq(r.interner(), clone.interner()));
    assert!(Arc::ptr_eq(r.interner(), overlay.interner()));
    for (name, sym) in &pre {
        assert_eq!(&*clone.interner().resolve(*sym), name.as_str());
        assert_eq!(&*overlay.interner().resolve(*sym), name.as_str());
    }

    // New interning through any handle is visible to all of them.
    let late = overlay.interner().intern("late_symbol");
    assert_eq!(r.interner().lookup("late_symbol"), Some(late));

    // Shared resolve slots: the untouched module's resolved IR is the same
    // allocation in the original and the clone.
    let a = r.resolve_module("m").unwrap();
    let b = clone.resolve_module("m").unwrap();
    assert!(Arc::ptr_eq(&a, &b), "clone shares the resolved-IR slot");
    // The overlay replaced `m`, so it must re-resolve, not reuse.
    let c = overlay.resolve_module("m").unwrap();
    assert!(!Arc::ptr_eq(&a, &c), "overlay re-resolves replaced modules");
}

#[test]
fn fingerprints_ignore_symbol_numbering() {
    let mut names = Names::new(9000);
    let mut r1 = Registry::new();
    r1.set_module("m", "alpha = 1\nbeta = 2\n");
    let mut r2 = Registry::new();
    r2.set_module("m", "alpha = 1\nbeta = 2\n");

    // Skew r2's symbol numbering arbitrarily before it resolves anything.
    for _ in 0..100 {
        r2.interner().intern(&names.next_name());
    }
    r1.resolve_module("m").unwrap();
    r2.resolve_module("m").unwrap();
    assert_ne!(
        r1.interner().lookup("beta"),
        r2.interner().lookup("beta"),
        "numbering really diverged"
    );
    assert_eq!(
        r1.fingerprint(),
        r2.fingerprint(),
        "fingerprint is content-based"
    );
    assert_eq!(r1, r2, "equality is content-based");
}

#[test]
fn interpreters_agree_regardless_of_symbol_numbering() {
    const MODULE: &str = "x = 10\ndef f(n):\n    return n + x\n";
    const MAIN: &str = "import m\nprint(m.f(5), m.x)\n";

    let mut r1 = Registry::new();
    r1.set_module("m", MODULE);
    let mut r2 = Registry::new();
    r2.set_module("m", MODULE);
    let mut names = Names::new(31337);
    for _ in 0..64 {
        r2.interner().intern(&names.next_name());
    }

    let mut i1 = Interpreter::new(r1);
    i1.exec_main(MAIN).unwrap();
    let mut i2 = Interpreter::new(r2);
    i2.exec_main(MAIN).unwrap();
    assert_eq!(i1.stdout, i2.stdout);
    assert_eq!(i1.observed_accesses(), i2.observed_accesses());
    assert_eq!(
        i1.meter.snapshot(),
        i2.meter.snapshot(),
        "identical virtual cost"
    );
}
