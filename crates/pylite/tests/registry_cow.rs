//! Property tests for the copy-on-write [`Registry`].
//!
//! The COW overlay (`with_module`) and the incremental fingerprint are the
//! load-bearing pieces of cheap probe construction in the debloater, so we
//! check them against the obvious reference implementations under randomized
//! module sets and edit sequences. Randomness comes from an inline
//! splitmix64 LCG with fixed seeds — no external crates, fully deterministic.

use pylite::Registry;

/// Deterministic pseudo-random stream (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A pool of valid pylite module bodies to draw from.
fn source_pool() -> Vec<String> {
    (0..8)
        .map(|i| {
            format!(
                "def f{i}(x):\n    return x + {i}\ndef g{i}(x):\n    return f{i}(x) * {}\n",
                i + 1
            )
        })
        .collect()
}

fn module_pool() -> Vec<&'static str> {
    vec![
        "alpha",
        "beta",
        "gamma",
        "pkg.core",
        "pkg.util",
        "pkg.sub.deep",
        "delta",
    ]
}

/// Build a registry by applying `edits` (name-index, source-index) in order.
fn build(edits: &[(usize, usize)]) -> Registry {
    let names = module_pool();
    let sources = source_pool();
    let mut reg = Registry::new();
    for &(n, s) in edits {
        reg.set_module(names[n], sources[s].clone());
    }
    reg
}

/// The overlay registry must be observationally equal to rebuilding the whole
/// registry from scratch with the replacement applied.
#[test]
fn overlay_is_observationally_equal_to_deep_rebuild() {
    let names = module_pool();
    let sources = source_pool();
    let mut rng = Rng(0x5eed_0001);

    for _ in 0..50 {
        // Random base registry of 3..=6 modules.
        let mut edits = Vec::new();
        for _ in 0..(3 + rng.below(4)) {
            edits.push((rng.below(names.len()), rng.below(sources.len())));
        }
        let base = build(&edits);

        // Replace one (possibly absent) module via the overlay...
        let target = names[rng.below(names.len())];
        let replacement = sources[rng.below(sources.len())].clone();
        let overlay = base.with_module(target, replacement.clone());

        // ...and by deep rebuild.
        let mut rebuilt = build(&edits);
        rebuilt.set_module(target, replacement);

        assert_eq!(overlay.fingerprint(), rebuilt.fingerprint());
        assert_eq!(overlay.len(), rebuilt.len());
        assert_eq!(overlay.module_names(), rebuilt.module_names());
        for name in overlay.module_names() {
            assert_eq!(overlay.source(&name), rebuilt.source(&name), "{name}");
            assert_eq!(overlay.contains(&name), rebuilt.contains(&name));
            assert_eq!(overlay.submodules(&name), rebuilt.submodules(&name));
            let a = overlay.parse_module(&name).expect("pool sources parse");
            let b = rebuilt.parse_module(&name).expect("pool sources parse");
            assert_eq!(a, b, "{name}: parses must agree");
        }
        // The base must be untouched by the overlay.
        assert_eq!(base.fingerprint(), build(&edits).fingerprint());
    }
}

/// Inserting the same (name, source) pairs in any order yields the same
/// fingerprint; different content yields a different one.
#[test]
fn fingerprint_is_insertion_order_independent() {
    let names = module_pool();
    let sources = source_pool();
    let mut rng = Rng(0x5eed_0002);

    for _ in 0..50 {
        // A fixed final assignment: each chosen module gets one source.
        let mut assignment: Vec<(usize, usize)> = Vec::new();
        for n in 0..names.len() {
            if rng.below(2) == 0 {
                assignment.push((n, rng.below(sources.len())));
            }
        }
        if assignment.len() < 2 {
            continue;
        }

        let reference = build(&assignment);

        // Shuffle (Fisher–Yates) and rebuild: same fingerprint.
        let mut shuffled = assignment.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.below(i + 1));
        }
        assert_eq!(build(&shuffled).fingerprint(), reference.fingerprint());

        // Perturb one source: different fingerprint.
        let mut perturbed = assignment.clone();
        let idx = rng.below(perturbed.len());
        perturbed[idx].1 = (perturbed[idx].1 + 1) % sources.len();
        assert_ne!(build(&perturbed).fingerprint(), reference.fingerprint());
    }
}

/// A random interleaving of set/remove operations keeps the incrementally
/// maintained fingerprint equal to a from-scratch rebuild of the same final
/// state, and equal states always share a fingerprint.
#[test]
fn incremental_fingerprint_matches_from_scratch_rebuild() {
    let names = module_pool();
    let sources = source_pool();
    let mut rng = Rng(0x5eed_0003);

    for _ in 0..30 {
        let mut incremental = Registry::new();
        let mut model: std::collections::BTreeMap<&str, String> = Default::default();

        for _ in 0..40 {
            let name = names[rng.below(names.len())];
            if rng.below(4) == 0 {
                incremental.remove_module(name);
                model.remove(name);
            } else {
                let src = sources[rng.below(sources.len())].clone();
                incremental.set_module(name, src.clone());
                model.insert(name, src);
            }
        }

        let mut from_scratch = Registry::new();
        for (name, src) in &model {
            from_scratch.set_module(*name, src.clone());
        }

        assert_eq!(incremental.fingerprint(), from_scratch.fingerprint());
        assert_eq!(incremental.len(), model.len());
        assert_eq!(incremental, from_scratch);
    }
}

/// Clones and overlays share parse results: parsing a module in the base and
/// then in a clone/overlay returns the same `Arc` allocation.
#[test]
fn clones_and_overlays_share_parsed_programs() {
    let mut base = Registry::new();
    base.set_module("a", "def f(x):\n    return x\n");
    base.set_module("b", "def g(x):\n    return x * 2\n");

    let parsed_a = base.parse_module("a").unwrap();

    let clone = base.clone();
    let overlay = base.with_module("b", "def g(x):\n    return x * 3\n");

    assert!(std::sync::Arc::ptr_eq(
        &parsed_a,
        &clone.parse_module("a").unwrap()
    ));
    assert!(std::sync::Arc::ptr_eq(
        &parsed_a,
        &overlay.parse_module("a").unwrap()
    ));
    // The replaced module must NOT share the stale parse.
    assert_ne!(
        overlay.source("b"),
        base.source("b"),
        "overlay replaces b's source"
    );
}
