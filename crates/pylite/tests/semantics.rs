//! Deeper semantic tests for the pylite runtime: the corner cases CPython
//! programs (and therefore debloated libraries) rely on.

use pylite::{ExcKind, Interpreter, Registry};

fn run(src: &str) -> Interpreter {
    let mut it = Interpreter::new(Registry::new());
    it.exec_main(src).expect("program runs");
    it
}

fn run_with(registry: Registry, src: &str) -> Interpreter {
    let mut it = Interpreter::new(registry);
    it.exec_main(src).expect("program runs");
    it
}

fn stdout(src: &str) -> Vec<String> {
    run(src).stdout
}

// -- scoping and namespaces ------------------------------------------------

#[test]
fn function_locals_do_not_leak() {
    let it =
        run("def f():\n    local = 42\n    return local\nf()\nprint(hasattr(__name__, \"x\"))\n");
    assert_eq!(it.stdout, vec!["False"]);
}

#[test]
fn inner_assignment_shadows_global_read() {
    // Unlike CPython (which raises UnboundLocalError), pylite resolves reads
    // dynamically; this test pins the documented behavior: a function-local
    // binding shadows the global after assignment.
    let it = run("x = 1\ndef f():\n    x = 2\n    return x\nprint(f(), x)\n");
    assert_eq!(it.stdout, vec!["2 1"]);
}

#[test]
fn class_body_has_its_own_namespace() {
    let it = run("v = \"module\"\nclass C:\n    v = \"class\"\nprint(v, C.v)\n");
    assert_eq!(it.stdout, vec!["module class"]);
}

#[test]
fn methods_see_module_globals() {
    let it = run("factor = 3\nclass M:\n    def scale(self, x):\n        return x * factor\nprint(M().scale(5))\n");
    assert_eq!(it.stdout, vec!["15"]);
}

#[test]
fn default_arguments_evaluate_at_definition_time() {
    let it = run("k = 10\ndef f(x=k):\n    return x\nk = 99\nprint(f())\n");
    assert_eq!(it.stdout, vec!["10"], "default captured at def time");
}

// -- classes and attribute resolution --------------------------------------

#[test]
fn instance_attributes_shadow_class_attributes() {
    let it = run(concat!(
        "class C:\n    kind = \"class\"\n",
        "c = C()\nprint(c.kind)\n",
        "c.kind = \"instance\"\nprint(c.kind, C.kind)\n",
    ));
    assert_eq!(it.stdout, vec!["class", "instance class"]);
}

#[test]
fn method_resolution_walks_linearized_bases() {
    let it = run(concat!(
        "class A:\n    def who(self):\n        return \"A\"\n",
        "class B(A):\n    pass\n",
        "class C(B):\n    def who(self):\n        return \"C\"\n",
        "print(B().who(), C().who())\n",
    ));
    assert_eq!(it.stdout, vec!["A C"]);
}

#[test]
fn bound_methods_capture_their_receiver() {
    let it = run(concat!(
        "class Counter:\n    def __init__(self):\n        self.n = 0\n",
        "    def bump(self):\n        self.n += 1\n        return self.n\n",
        "c = Counter()\nf = c.bump\nf()\nf()\nprint(c.n)\n",
    ));
    assert_eq!(it.stdout, vec!["2"]);
}

#[test]
fn isinstance_with_tuple_of_classes() {
    assert_eq!(
        stdout("print(isinstance(3, (str, int)))\nprint(isinstance(3.5, (str, int)))\n"),
        vec!["True", "False"]
    );
}

// -- exceptions --------------------------------------------------------------

#[test]
fn exception_subclass_matching() {
    let it = run(concat!(
        "class AppError(Exception):\n    pass\n",
        "class DbError(AppError):\n    pass\n",
        "try:\n    raise DbError(\"down\")\nexcept AppError as e:\n    print(\"caught\", str(e))\n",
    ));
    assert_eq!(it.stdout.len(), 1);
    assert!(it.stdout[0].starts_with("caught"));
}

#[test]
fn first_matching_handler_wins() {
    let it = run(concat!(
        "try:\n    raise ValueError(\"v\")\n",
        "except TypeError:\n    print(\"type\")\n",
        "except ValueError:\n    print(\"value\")\n",
        "except:\n    print(\"bare\")\n",
    ));
    assert_eq!(it.stdout, vec!["value"]);
}

#[test]
fn finally_runs_on_uncaught_exception() {
    let mut it = Interpreter::new(Registry::new());
    let err = it
        .exec_main("try:\n    raise KeyError(\"k\")\nfinally:\n    print(\"cleanup\")\n")
        .unwrap_err();
    assert!(matches!(err.kind, ExcKind::KeyError));
    assert_eq!(it.stdout, vec!["cleanup"]);
}

#[test]
fn nested_try_blocks_unwind_in_order() {
    let it = run(concat!(
        "try:\n",
        "    try:\n        raise ValueError(\"inner\")\n",
        "    finally:\n        print(\"inner-finally\")\n",
        "except ValueError:\n    print(\"outer-caught\")\n",
    ));
    assert_eq!(it.stdout, vec!["inner-finally", "outer-caught"]);
}

#[test]
fn else_clause_runs_only_without_exception() {
    let it = run(concat!(
        "try:\n    x = 1\nexcept:\n    print(\"no\")\nelse:\n    print(\"else\")\n",
        "try:\n    raise ValueError(\"v\")\nexcept ValueError:\n    print(\"caught\")\nelse:\n    print(\"unreachable\")\n",
    ));
    assert_eq!(it.stdout, vec!["else", "caught"]);
}

// -- import machinery --------------------------------------------------------

#[test]
fn deep_package_chains_bind_parents() {
    let mut r = Registry::new();
    r.set_module("a", "x = \"a\"\n");
    r.set_module("a.b", "x = \"ab\"\n");
    r.set_module("a.b.c", "x = \"abc\"\n");
    let it = run_with(r, "import a.b.c\nprint(a.x, a.b.x, a.b.c.x)\n");
    assert_eq!(it.stdout, vec!["a ab abc"]);
}

#[test]
fn import_inside_function_is_lazy() {
    let mut r = Registry::new();
    r.set_module("heavy", "__lt_work__(500)\nv = 1\n");
    let mut it = Interpreter::new(r);
    it.exec_main("def handler(event, context):\n    import heavy\n    return heavy.v\n")
        .unwrap();
    assert!(
        it.meter.clock_secs() < 0.4,
        "lazy import must not run at init"
    );
    let out = it
        .call_handler("handler", pylite::Value::None, pylite::Value::None)
        .unwrap();
    assert!(pylite::py_eq(&out, &pylite::Value::Int(1)));
    assert!(
        it.meter.clock_secs() >= 0.5,
        "import ran inside the handler"
    );
}

#[test]
fn module_level_state_is_shared_between_importers() {
    let mut r = Registry::new();
    r.set_module("state", "counter = [0]\n");
    r.set_module("writer", "import state\nstate.counter.append(1)\n");
    let it = run_with(r, "import writer\nimport state\nprint(state.counter)\n");
    assert_eq!(it.stdout, vec!["[0, 1]"]);
}

#[test]
fn import_error_reports_missing_module_name() {
    let mut it = Interpreter::new(Registry::new());
    let err = it.exec_main("import ghost_pkg\n").unwrap_err();
    assert!(matches!(err.kind, ExcKind::ImportError));
    assert!(err.message.contains("ghost_pkg"));
}

// -- data model ----------------------------------------------------------------

#[test]
fn aug_assign_on_attributes_and_subscripts() {
    let it = run(concat!(
        "class Box:\n    def __init__(self):\n        self.v = 10\n",
        "b = Box()\nb.v += 5\nprint(b.v)\n",
        "d = {\"k\": 1}\nd[\"k\"] += 9\nprint(d[\"k\"])\n",
        "xs = [1, 2]\nxs[1] *= 3\nprint(xs)\n",
    ));
    assert_eq!(it.stdout, vec!["15", "10", "[1, 6]"]);
}

#[test]
fn mutation_through_aliases_is_visible() {
    assert_eq!(
        stdout("a = [1]\nb = a\nb.append(2)\nprint(a)\nprint(a is b)\n"),
        vec!["[1, 2]", "True"]
    );
}

#[test]
fn string_formatting_and_methods_chain() {
    assert_eq!(
        stdout("print(\"{}-{}\".format(\"A\", 1).lower())\nprint(\" x \".strip().upper())\n"),
        vec!["a-1".to_owned(), "X".to_owned()]
    );
}

#[test]
fn dict_preserves_insertion_order() {
    assert_eq!(
        stdout("d = {}\nd[\"z\"] = 1\nd[\"a\"] = 2\nd[\"m\"] = 3\nprint(d.keys())\n"),
        vec!["[\"z\", \"a\", \"m\"]"]
    );
}

#[test]
fn chained_comparisons_short_circuit() {
    // `1 < boom()` must not evaluate boom() when the first leg fails.
    assert_eq!(
        stdout("def boom():\n    raise ValueError(\"no\")\nprint(2 < 1 < boom())\n"),
        vec!["False"]
    );
}

#[test]
fn nested_comprehensions_and_slices_compose() {
    assert_eq!(
        stdout("m = [[r * 3 + c for c in range(3)] for r in range(3)]\nprint(m[1])\nprint([row[0] for row in m][1:])\n"),
        vec!["[3, 4, 5]", "[3, 6]"]
    );
}

#[test]
fn del_on_names_and_attributes() {
    let it = run(concat!(
        "class C:\n    pass\n",
        "c = C()\nc.x = 1\ndel c.x\nprint(hasattr(c, \"x\"))\n",
        "y = 5\ndel y\nprint(hasattr(c, \"y\"))\n",
    ));
    assert_eq!(it.stdout, vec!["False", "False"]);
}

// -- metering determinism ------------------------------------------------------

#[test]
fn identical_programs_meter_identically_across_registries() {
    let mut r1 = Registry::new();
    r1.set_module("m", "x = [i for i in range(50)]\n__lt_work__(5)\n");
    let r2 = r1.clone();
    let a = run_with(r1, "import m\nprint(len(m.x))\n");
    let b = run_with(r2, "import m\nprint(len(m.x))\n");
    assert_eq!(a.stdout, b.stdout);
    assert_eq!(a.meter.clock_ns(), b.meter.clock_ns());
    assert_eq!(a.meter.mem_bytes(), b.meter.mem_bytes());
}

#[test]
fn import_events_sum_to_less_than_total_clock() {
    let mut r = Registry::new();
    r.set_module("a", "__lt_work__(10)\n");
    r.set_module("b", "__lt_work__(20)\n");
    let it = run_with(r, "import a\nimport b\nz = 1\n");
    let events_ns: u64 = it
        .import_events
        .iter()
        .filter(|e| e.depth == 0)
        .map(|e| e.time_ns)
        .sum();
    assert!(events_ns <= it.meter.clock_ns());
    assert!(events_ns >= 30_000_000, "both import bodies metered");
}
